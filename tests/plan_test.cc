// Golden plan-choice regressions for the cost-based twig join planner
// (src/plan): pinned join orders and cost terms over a fixed document and
// sketch, sub-twig extraction semantics, the estimate-vs-naive work
// guarantee on pinned cases, and Prepare/Plan thread-safety (the TSan
// target in tests/run_sanitizers.sh runs this binary).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/estimator.h"
#include "core/twig_xsketch.h"
#include "exec/streams.h"
#include "exec/structural_join.h"
#include "plan/cardinality.h"
#include "plan/planner.h"
#include "query/evaluator.h"
#include "query/xpath_parser.h"
#include "xml/document.h"
#include "xsketch_api.h"

namespace xsketch::plan {
namespace {

using exec::JoinEdge;
using query::Axis;
using query::TwigQuery;

// The golden document: a site with 42 categories (each named), of which
// only 2 carry items (5 each, with priced children). Tag extents differ
// by 4x+, so join order matters: seeding //site/category/item at the
// (category, item) edge costs 10 intermediate rows, the syntactic
// (site, category) seed costs 42.
xml::Document GoldenDoc() {
  xml::Document doc;
  const xml::NodeId site = doc.AddNode(xml::kInvalidNode, "site");
  for (int i = 0; i < 40; ++i) {
    const xml::NodeId cat = doc.AddNode(site, "category");
    doc.AddNode(cat, "name");
  }
  for (int i = 0; i < 2; ++i) {
    const xml::NodeId cat = doc.AddNode(site, "category");
    doc.AddNode(cat, "name");
    for (int j = 0; j < 5; ++j) {
      const xml::NodeId item = doc.AddNode(cat, "item");
      doc.SetValue(doc.AddNode(item, "price"), std::to_string(10 * (j + 1)));
    }
  }
  doc.Seal();
  return doc;
}

TwigQuery Parse(const xml::Document& doc, const std::string& path) {
  auto q = query::ParsePath(path, doc.tags());
  EXPECT_TRUE(q.ok()) << path << ": " << q.status().ToString();
  return q.value();
}

// --- ExtractSubTwig ------------------------------------------------------------------

TEST(ExtractSubTwigTest, SubsetKeepsAxesPredsAndExistentialFilters) {
  // //t0/t1[t2]//t3 with a predicate on t3 (raw tag ids; no document
  // needed to exercise extraction).
  TwigQuery q;
  const int t0 = q.AddNode(TwigQuery::kNoParent, Axis::kDescendant, 0);
  const int t1 = q.AddNode(t0, Axis::kChild, 1);
  q.AddNode(t1, Axis::kChild, 2, /*existential=*/true);
  const int t3 = q.AddNode(t1, Axis::kDescendant, 3, false,
                           query::ValuePredicate{1, 7});

  // Subset {t1, t3}: t1 becomes the (unanchored) root, the existential
  // t2 subtree rides along, t0 is gone.
  const TwigQuery sub = ExtractSubTwig(q, {t1, t3});
  ASSERT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.node(0).tag, 1u);
  EXPECT_EQ(sub.node(0).axis, Axis::kDescendant);  // no longer anchored
  EXPECT_FALSE(sub.node(0).existential);
  // Children of the new root: binding t3 (pred kept) + existential t2.
  ASSERT_EQ(sub.node(0).children.size(), 2u);
  const auto& n1 = sub.node(sub.node(0).children[0]);
  const auto& n2 = sub.node(sub.node(0).children[1]);
  const auto& binding = n1.existential ? n2 : n1;
  const auto& exist = n1.existential ? n1 : n2;
  EXPECT_EQ(binding.tag, 3u);
  EXPECT_EQ(binding.axis, Axis::kDescendant);
  ASSERT_TRUE(binding.pred.has_value());
  EXPECT_EQ(binding.pred->lo, 1);
  EXPECT_EQ(binding.pred->hi, 7);
  EXPECT_EQ(exist.tag, 2u);
  EXPECT_TRUE(exist.existential);
  EXPECT_TRUE(sub.Validate().ok());
}

TEST(ExtractSubTwigTest, OriginalRootKeepsItsAxis) {
  TwigQuery q;
  const int r = q.AddNode(TwigQuery::kNoParent, Axis::kChild, 0);
  const int c = q.AddNode(r, Axis::kChild, 1);
  const TwigQuery sub = ExtractSubTwig(q, {r, c});
  EXPECT_EQ(sub.node(0).axis, Axis::kChild);  // still anchored
}

// Extraction is the planner's cost model *and* the executor's logical
// accounting: card(ExtractSubTwig(S)) under the exact evaluator equals
// the executor's logical_rows for the join prefix covering S.
TEST(ExtractSubTwigTest, ExtractionMatchesExecutorLogicalRows) {
  const xml::Document doc = GoldenDoc();
  const query::ExactEvaluator exact(doc);
  const exec::StreamIndex index(doc);
  const exec::StructuralJoinExecutor executor(index);

  const TwigQuery q = Parse(doc, "//site/category//item");
  const auto sk = exec::MakeBindingSkeleton(q);
  ASSERT_EQ(sk.edges.size(), 2u);
  const auto r = executor.ExecuteBinary(q, sk.edges);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The prefix after the first (syntactic) join covers {site, category}.
  const uint64_t prefix_card = exact.Selectivity(ExtractSubTwig(q, {0, 1}));
  EXPECT_EQ(r.value().logical_rows, prefix_card);
  EXPECT_EQ(prefix_card, 42u);
}

// --- Golden plans over a fixed sketch ------------------------------------------------

class PlannerGoldenTest : public ::testing::Test {
 protected:
  PlannerGoldenTest()
      : doc_(GoldenDoc()),
        sketch_(core::TwigXSketch::Coarsest(doc_)),
        estimator_(sketch_),
        cards_(estimator_),
        exact_(doc_),
        exact_cards_(exact_) {}

  xml::Document doc_;
  core::TwigXSketch sketch_;
  core::Estimator estimator_;
  EstimatorCardinalities cards_;
  query::ExactEvaluator exact_;
  ExactCardinalities exact_cards_;
};

TEST_F(PlannerGoldenTest, SingleBindingNodeHasEmptyOrder) {
  const TwigQuery q = Parse(doc_, "//site");
  const auto plan = PlanTwig(q, cards_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan.value().order.empty());
  EXPECT_TRUE(plan.value().optimized);
  EXPECT_EQ(plan.value().binary_cost, 0.0);
}

TEST_F(PlannerGoldenTest, ChainJoinOrderIsPinned) {
  // //site/category/item/price (nodes 0..3): the cheap seed is the
  // (category, item) edge — 10 true intermediate rows vs 42 for the
  // syntactic (site, category) seed — and the coarsest sketch estimates
  // this document exactly (uniform fanouts), so the estimate-driven and
  // exact-driven DPs pin the same chain:
  //   (1<-2) seed, then site joins in, then price.
  const TwigQuery q = Parse(doc_, "//site/category/item/price");
  const std::vector<JoinEdge> want = {{1, 2}, {0, 1}, {2, 3}};
  for (const CardinalityProvider* cards :
       {static_cast<const CardinalityProvider*>(&cards_),
        static_cast<const CardinalityProvider*>(&exact_cards_)}) {
    const auto plan = PlanTwig(q, *cards);
    ASSERT_TRUE(plan.ok()) << cards->name();
    EXPECT_EQ(plan.value().order, want) << cards->name();
    EXPECT_TRUE(plan.value().optimized);
    // Chain costs: intermediates {cat,item} = 10 and {site,cat,item} =
    // 10; result 10.
    EXPECT_NEAR(plan.value().binary_cost, 20.0, 1e-9) << cards->name();
    EXPECT_NEAR(plan.value().result_estimate, 10.0, 1e-9) << cards->name();
  }

  // The plan executes to the exact count, with less work than naive.
  const exec::StreamIndex index(doc_);
  const exec::StructuralJoinExecutor executor(index);
  const auto plan = PlanTwig(q, cards_);
  ASSERT_TRUE(plan.ok());
  const auto chosen = executor.ExecuteBinary(q, plan.value().order);
  const auto naive = executor.ExecuteNaive(q);
  ASSERT_TRUE(chosen.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(chosen.value().matches, exact_.Selectivity(q));
  EXPECT_EQ(chosen.value().matches, naive.value().matches);
  EXPECT_EQ(chosen.value().logical_rows, 20u);
  EXPECT_EQ(naive.value().logical_rows, 52u);  // 42 + 10
}

TEST_F(PlannerGoldenTest, EstimatePlanNeverWorseThanNaiveOnPinnedCases) {
  // Pinned workload sample: estimate-driven join orders must not exceed
  // the naive order's true intermediate work on any of these.
  const exec::StreamIndex index(doc_);
  const exec::StructuralJoinExecutor executor(index);
  PlannerOptions popts;
  popts.consider_holistic = false;
  for (const char* path :
       {"//site/category/item", "//site/category/item/price",
        "//category[name]/item", "//site//item", "//site/category[item]",
        "//category/item[price>20]"}) {
    const TwigQuery q = Parse(doc_, path);
    const auto plan = PlanTwig(q, cards_, popts);
    ASSERT_TRUE(plan.ok()) << path;
    const auto est = executor.ExecuteBinary(q, plan.value().order);
    const auto naive = executor.ExecuteNaive(q);
    ASSERT_TRUE(est.ok()) << path;
    ASSERT_TRUE(naive.ok()) << path;
    EXPECT_LE(est.value().logical_rows, naive.value().logical_rows) << path;
    EXPECT_EQ(est.value().matches, naive.value().matches) << path;
    EXPECT_EQ(est.value().matches, exact_.Selectivity(q)) << path;
  }
}

TEST_F(PlannerGoldenTest, CostTermsArePinnedToTheProvider) {
  // The DP's cost terms are provider cardinalities of extracted
  // sub-twigs — pin the arithmetic, not just the ordering.
  const TwigQuery q = Parse(doc_, "//site/category/item");
  const auto plan = PlanTwig(q, cards_);
  ASSERT_TRUE(plan.ok());
  const auto& p = plan.value();
  ASSERT_EQ(p.order.size(), 2u);
  ASSERT_EQ(p.step_cards.size(), 2u);

  const double full_est = estimator_.Estimate(q);
  EXPECT_DOUBLE_EQ(p.result_estimate, full_est);
  EXPECT_DOUBLE_EQ(p.step_cards.back(), full_est);
  // binary_cost = sum of the non-final step cards.
  EXPECT_DOUBLE_EQ(p.binary_cost, p.step_cards.front());
  // The pinned intermediate is itself an estimator call on the extracted
  // seed-pair sub-twig.
  const JoinEdge seed = p.order.front();
  const double seed_est =
      estimator_.Estimate(ExtractSubTwig(q, {seed.parent, seed.child}));
  EXPECT_DOUBLE_EQ(p.step_cards.front(), seed_est);
}

TEST_F(PlannerGoldenTest, DeterministicAcrossRepeatedRuns) {
  const TwigQuery q = Parse(doc_, "//category[name]/item");
  const auto a = PlanTwig(q, cards_);
  const auto b = PlanTwig(q, cards_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().order, b.value().order);
  EXPECT_EQ(a.value().binary_cost, b.value().binary_cost);
  EXPECT_EQ(a.value().use_holistic, b.value().use_holistic);
  EXPECT_EQ(a.value().ToString(), b.value().ToString());
}

TEST_F(PlannerGoldenTest, HolisticDecisionFollowsTheCostFactor) {
  const TwigQuery q = Parse(doc_, "//site/category/item");
  PlannerOptions popts;
  popts.holistic_cost_factor = 1e-9;  // scans are nearly free
  const auto cheap = PlanTwig(q, cards_, popts);
  ASSERT_TRUE(cheap.ok());
  EXPECT_TRUE(cheap.value().use_holistic);
  // The best binary order is still reported alongside the choice.
  EXPECT_EQ(cheap.value().order.size(), 2u);

  popts.holistic_cost_factor = 1e9;  // scans are prohibitive
  const auto costly = PlanTwig(q, cards_, popts);
  ASSERT_TRUE(costly.ok());
  EXPECT_FALSE(costly.value().use_holistic);

  popts.consider_holistic = false;
  popts.holistic_cost_factor = 1e-9;
  const auto off = PlanTwig(q, cards_, popts);
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off.value().use_holistic);
}

TEST_F(PlannerGoldenTest, WideTwigFallsBackToNaiveOrder) {
  PlannerOptions popts;
  popts.max_dp_binding_nodes = 2;  // force the fallback on a 3-node twig
  const TwigQuery q = Parse(doc_, "//site/category/item");
  const auto plan = PlanTwig(q, cards_, popts);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().optimized);
  EXPECT_EQ(plan.value().order, NaiveOrder(q));
}

TEST_F(PlannerGoldenTest, InvalidTwigIsRejected) {
  TwigQuery q;  // empty
  const auto plan = PlanTwig(q, cards_);
  EXPECT_EQ(plan.status().code(), util::StatusCode::kInvalidArgument);
}

// --- Session facade + concurrency (the TSan target) ----------------------------------

TEST(SessionPlanTest, ConcurrentPrepareAndPlanAreRaceFree) {
  const xml::Document doc = GoldenDoc();
  auto session = api::Session::Open(core::TwigXSketch::Coarsest(doc));
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  std::vector<TwigQuery> queries;
  for (const char* path : {"//site/category/item", "//site//item",
                           "//category[name]/item", "//site/category"}) {
    queries.push_back(Parse(doc, path));
  }

  // Hammer Plan (which runs Prepare per sub-twig through the shared LRU
  // plan cache) and Prepare from many threads at once; results must be
  // identical across threads and runs.
  const auto baseline = session.value().Plan(queries[0]);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  std::vector<std::thread> threads;
  std::vector<int> failures(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 16; ++i) {
        const auto& q = queries[(t + i) % queries.size()];
        const auto plan = session.value().Plan(q);
        if (!plan.ok()) ++failures[t];
        const auto prepared = session.value().Prepare(q);
        if (!prepared.ok()) ++failures[t];
        const auto again = session.value().Plan(queries[0]);
        if (!again.ok() || again.value().order != baseline.value().order ||
            again.value().binary_cost != baseline.value().binary_cost) {
          ++failures[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

}  // namespace
}  // namespace xsketch::plan
