#include <gtest/gtest.h>

#include <cmath>

#include "cst/cst.h"
#include "data/figures.h"
#include "data/imdb.h"
#include "data/xmark.h"
#include "query/evaluator.h"
#include "query/workload.h"
#include "query/xpath_parser.h"
#include "xml/parser.h"

namespace xsketch::cst {
namespace {

xml::Document Parse(const char* text) {
  auto r = xml::ParseDocument(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

double EstimatePath(const CorrelatedSuffixTree& cst,
                    const xml::Document& doc, const char* path) {
  auto q = query::ParsePath(path, doc.tags());
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return cst.Estimate(q.value());
}

TEST(CstTest, ExactPathCountsWithoutPruning) {
  xml::Document doc = data::MakeBibliography();
  CstOptions opts;
  opts.budget_bytes = 1 << 20;  // no pruning
  CorrelatedSuffixTree cst = CorrelatedSuffixTree::Build(doc, opts);

  EXPECT_NEAR(EstimatePath(cst, doc, "//author"), 3.0, 1e-9);
  EXPECT_NEAR(EstimatePath(cst, doc, "//paper"), 4.0, 1e-9);
  EXPECT_NEAR(EstimatePath(cst, doc, "//paper/keyword"), 5.0, 1e-9);
  EXPECT_NEAR(EstimatePath(cst, doc, "//keyword"), 5.0, 1e-9);
  EXPECT_NEAR(EstimatePath(cst, doc, "/bib/author/book"), 1.0, 1e-9);
}

TEST(CstTest, AbsentPathEstimates) {
  xml::Document doc = data::MakeBibliography();
  CorrelatedSuffixTree cst = CorrelatedSuffixTree::Build(doc, {});
  // Unknown labels estimate exactly zero.
  EXPECT_EQ(EstimatePath(cst, doc, "//nonexistent"), 0.0);
  // An absent combination of known labels gets a *nonzero* maximal-overlap
  // back-off estimate (count(book) * count(keyword) / count()): CST cannot
  // certify structural absence — one of the weaknesses the paper observes
  // ("extremely large estimation errors on certain queries").
  const double est = EstimatePath(cst, doc, "//book/keyword");
  EXPECT_GT(est, 0.0);
  EXPECT_LT(est, 1.0);
}

TEST(CstTest, TwigCombinesBranchesIndependently) {
  // Figure 4: CST (path statistics only) cannot distinguish the two
  // documents — both estimate 2 * 55 * 55 = 6050 under branch
  // independence.
  xml::Document a = data::MakeFigure4A();
  xml::Document b = data::MakeFigure4B();
  CorrelatedSuffixTree ca = CorrelatedSuffixTree::Build(a, {});
  CorrelatedSuffixTree cb = CorrelatedSuffixTree::Build(b, {});
  auto qa = query::ParseForClause("for t0 in //a, t1 in t0/b, t2 in t0/c",
                                  a.tags());
  auto qb = query::ParseForClause("for t0 in //a, t1 in t0/b, t2 in t0/c",
                                  b.tags());
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qb.ok());
  EXPECT_NEAR(ca.Estimate(qa.value()), 6050.0, 1e-6);
  EXPECT_NEAR(cb.Estimate(qb.value()), 6050.0, 1e-6);
}

TEST(CstTest, ExistentialBranchCapsAtOne) {
  xml::Document doc = data::MakeBibliography();
  CorrelatedSuffixTree cst = CorrelatedSuffixTree::Build(doc, {});
  // //author[paper]: ratio paper/author = 4/3 capped at 1 -> 3.
  EXPECT_NEAR(EstimatePath(cst, doc, "//author[paper]"), 3.0, 1e-9);
  // //author[book]: ratio 1/3 -> estimate 1.
  EXPECT_NEAR(EstimatePath(cst, doc, "//author[book]"), 1.0, 1e-9);
}

TEST(CstTest, PruningRespectsBudget) {
  xml::Document doc = data::GenerateXMark({.seed = 12, .scale = 0.1});
  CstOptions big;
  big.budget_bytes = 1 << 22;
  CorrelatedSuffixTree full = CorrelatedSuffixTree::Build(doc, big);
  CstOptions small;
  small.budget_bytes = 8 * 1024;
  CorrelatedSuffixTree pruned = CorrelatedSuffixTree::Build(doc, small);
  EXPECT_LE(pruned.SizeBytes(), small.budget_bytes);
  EXPECT_LT(pruned.node_count(), full.node_count());
}

TEST(CstTest, MaximalOverlapReconstructsPrunedPaths) {
  xml::Document doc = data::GenerateXMark({.seed = 12, .scale = 0.1});
  CstOptions small;
  small.budget_bytes = 16 * 1024;
  CorrelatedSuffixTree cst = CorrelatedSuffixTree::Build(doc, small);
  query::ExactEvaluator eval(doc);
  // Common paths should still be estimated within an order of magnitude.
  for (const char* path :
       {"//person/name", "//open_auction/bidder", "//item/quantity"}) {
    auto q = query::ParsePath(path, doc.tags());
    ASSERT_TRUE(q.ok());
    const double truth = static_cast<double>(eval.Selectivity(q.value()));
    const double est = cst.Estimate(q.value());
    ASSERT_GT(truth, 0.0);
    EXPECT_GT(est, truth / 10) << path;
    EXPECT_LT(est, truth * 10) << path;
  }
}

TEST(CstTest, EstimatesFiniteOnWorkload) {
  xml::Document doc = data::GenerateImdb({.seed = 13, .scale = 0.05});
  CstOptions opts;
  opts.budget_bytes = 20 * 1024;
  CorrelatedSuffixTree cst = CorrelatedSuffixTree::Build(doc, opts);
  query::WorkloadOptions wopts;
  wopts.seed = 41;
  wopts.num_queries = 40;
  wopts.existential_prob = 0.0;  // the CST comparison workload shape
  query::Workload w = query::GeneratePositiveWorkload(doc, wopts);
  for (const auto& q : w.queries) {
    const double e = cst.Estimate(q.twig);
    EXPECT_TRUE(std::isfinite(e));
    EXPECT_GE(e, 0.0);
  }
}

TEST(CstTest, DeterministicBuild) {
  xml::Document doc = data::GenerateImdb({.seed = 13, .scale = 0.03});
  CstOptions opts;
  opts.budget_bytes = 12 * 1024;
  CorrelatedSuffixTree a = CorrelatedSuffixTree::Build(doc, opts);
  CorrelatedSuffixTree b = CorrelatedSuffixTree::Build(doc, opts);
  EXPECT_EQ(a.node_count(), b.node_count());
  auto q = query::ParsePath("//movie/actor", doc.tags());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(a.Estimate(q.value()), b.Estimate(q.value()));
}

TEST(CstTest, MarkovOrderCapTruncatesLongPaths) {
  // Build a deep chain document; queries longer than the cap must still
  // produce sensible estimates from the truncated suffix.
  xml::Document doc = Parse(
      "<l0><l1><l2><l3><l4><l5><l6><l7><l8><l9>x</l9></l8></l7></l6>"
      "</l5></l4></l3></l2></l1></l0>");
  CstOptions opts;
  opts.max_suffix_length = 4;
  CorrelatedSuffixTree cst = CorrelatedSuffixTree::Build(doc, opts);
  EXPECT_NEAR(EstimatePath(cst, doc, "/l0/l1/l2/l3/l4/l5/l6/l7/l8/l9"), 1.0,
              1e-6);
}

}  // namespace
}  // namespace xsketch::cst
