// Daemon robustness tests: an in-process daemon exercised over real
// sockets — correctness of both protocols, admission-control shedding at
// 2x saturation (every shed request gets an explicit 429/NACK, accepted
// tail latency stays bounded), deadline handling (queue expiry and batch
// chunk abandonment), request-size limits, and graceful drain under
// load (the SIGTERM half of the ci_check smoke, driven here through
// drain_fd, which is byte-for-byte what the signal handler does).

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/frozen.h"
#include "core/frozen_io.h"
#include "core/twig_xsketch.h"
#include "daemon/daemon.h"
#include "data/figures.h"
#include "net/json.h"
#include "net/wire.h"
#include "query/xpath_parser.h"
#include "service/estimation_service.h"
#include "testing/faultpoints.h"
#include "util/percentiles.h"

namespace xsketch {
namespace {

using Clock = std::chrono::steady_clock;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- tiny blocking clients ----------------------------------------------

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  timeval tv{10, 0};  // a hung test is worse than a failed one
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

struct HttpResponse {
  int status = 0;       // 0 = transport failure (connection died)
  std::string body;
  std::string raw;
};

// One Connection: close request; reads to EOF.
HttpResponse HttpRoundTrip(uint16_t port, const std::string& method,
                           const std::string& path, const std::string& body,
                           const std::string& extra_headers = "") {
  HttpResponse resp;
  const int fd = ConnectTo(port);
  if (fd < 0) return resp;
  std::string req = method + " " + path + " HTTP/1.1\r\n" +
                    "Host: test\r\nConnection: close\r\n" + extra_headers +
                    "Content-Length: " + std::to_string(body.size()) +
                    "\r\n\r\n" + body;
  if (!SendAll(fd, req)) {
    ::close(fd);
    return resp;
  }
  char buf[16384];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (resp.raw.size() < 12 || resp.raw.compare(0, 5, "HTTP/") != 0) {
    return resp;
  }
  resp.status = std::atoi(resp.raw.c_str() + 9);
  const size_t split = resp.raw.find("\r\n\r\n");
  if (split != std::string::npos) resp.body = resp.raw.substr(split + 4);
  return resp;
}

// A persistent XSKB connection.
class BinaryClient {
 public:
  explicit BinaryClient(uint16_t port) : fd_(ConnectTo(port)) {
    if (fd_ >= 0) SendAll(fd_, std::string(net::kWirePreface));
  }
  ~BinaryClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  bool SendFrame(net::FrameType type, const std::string& payload) {
    std::string out;
    net::AppendWireFrame(&out, type, payload);
    return SendAll(fd_, out);
  }

  // Reads one complete frame; false on EOF/timeout.
  bool ReadFrame(net::WireFrame* frame) {
    while (true) {
      auto parsed = net::ParseWireFrame(rbuf_, 64 << 20);
      if (parsed.outcome == net::WireParseOutcome::kFrame) {
        *frame = std::move(parsed.frame);
        rbuf_.erase(0, parsed.consumed);
        return true;
      }
      if (parsed.outcome == net::WireParseOutcome::kError) return false;
      char buf[16384];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      rbuf_.append(buf, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string rbuf_;
};

// --- fixture -------------------------------------------------------------

class DaemonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // One shared sketch file for the whole suite.
    xml::Document doc = data::MakeBibliography();
    const core::FrozenSynopsis frozen(core::TwigXSketch::Coarsest(doc));
    sketch_path_ = new std::string(TempPath("daemon_test.xsk3"));
    ASSERT_TRUE(core::SaveFrozenToFile(frozen, *sketch_path_).ok());
  }

  void TearDown() override {
    StopDaemon();
    xsketch::testing::FaultPoints::Default().DisarmAll();
  }

  void StartDaemon(daemon::DaemonOptions options) {
    options.server.port = 0;
    options.sketches.emplace_back("bib", *sketch_path_);
    auto created = daemon::Daemon::Create(std::move(options));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    daemon_ = std::move(created).value();
    loop_ = std::thread([this] { daemon_->Run(); });
  }

  void StopDaemon() {
    if (daemon_ == nullptr) return;
    daemon_->Stop();
    if (loop_.joinable()) loop_.join();
    daemon_.reset();
  }

  uint16_t port() const { return daemon_->port(); }

  static std::string* sketch_path_;
  std::unique_ptr<daemon::Daemon> daemon_;
  std::thread loop_;
};

std::string* DaemonTest::sketch_path_ = nullptr;

// --- protocol correctness ------------------------------------------------

TEST_F(DaemonTest, HttpEndpoints) {
  StartDaemon({});
  auto health = HttpRoundTrip(port(), "GET", "/healthz", "");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"ok\""), std::string::npos);

  auto est = HttpRoundTrip(port(), "POST", "/estimate",
                           R"({"doc":"bib","query":"//book"})");
  ASSERT_EQ(est.status, 200) << est.body;
  EXPECT_NE(est.body.find("\"estimate\":"), std::string::npos);
  EXPECT_NE(est.body.find("\"generation\":1"), std::string::npos);

  auto batch = HttpRoundTrip(
      port(), "POST", "/batch",
      R"({"doc":"bib","queries":["//book","//book/author","//]bad"]})");
  ASSERT_EQ(batch.status, 200) << batch.body;
  EXPECT_NE(batch.body.find("\"results\":["), std::string::npos);
  EXPECT_NE(batch.body.find("\"error\":"), std::string::npos);
  EXPECT_NE(batch.body.find("\"failed\":1"), std::string::npos);

  auto explain = HttpRoundTrip(port(), "POST", "/explain",
                               R"({"doc":"bib","query":"//book"})");
  ASSERT_EQ(explain.status, 200) << explain.body;
  EXPECT_NE(explain.body.find("\"terms\":"), std::string::npos);
  EXPECT_NE(explain.body.find("\"plan\":"), std::string::npos);

  auto metrics = HttpRoundTrip(port(), "GET", "/metrics", "");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("xsketch_daemon_requests_total"),
            std::string::npos);

  // Error statuses: wrong doc, bad query, bad body, unknown path, wrong
  // method.
  EXPECT_EQ(HttpRoundTrip(port(), "POST", "/estimate",
                          R"({"doc":"nope","query":"//book"})")
                .status,
            404);
  EXPECT_EQ(HttpRoundTrip(port(), "POST", "/estimate",
                          R"({"doc":"bib","query":"//]bad"})")
                .status,
            400);
  EXPECT_EQ(HttpRoundTrip(port(), "POST", "/estimate", "not json").status,
            400);
  EXPECT_EQ(HttpRoundTrip(port(), "GET", "/nope", "").status, 404);
  EXPECT_EQ(HttpRoundTrip(port(), "GET", "/estimate", "").status, 405);
}

TEST_F(DaemonTest, HttpEstimateMatchesDirectExecution) {
  StartDaemon({});
  auto resp = HttpRoundTrip(port(), "POST", "/estimate",
                            R"({"doc":"bib","query":"//book/author"})");
  ASSERT_EQ(resp.status, 200);

  // The same query straight through the catalog handle.
  auto handle = daemon_->catalog().Get("bib");
  ASSERT_TRUE(handle.ok());
  auto plan = handle.value().Prepare(std::string("//book/author"));
  ASSERT_TRUE(plan.ok());
  std::string expected = "{\"estimate\":";
  net::AppendJsonNumber(&expected, plan.value()->Execute());
  EXPECT_EQ(resp.body.compare(0, expected.size(), expected), 0)
      << resp.body << " vs " << expected;
}

TEST_F(DaemonTest, BinaryProtocol) {
  StartDaemon({});
  BinaryClient client(port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client.SendFrame(net::FrameType::kPing, ""));
  net::WireFrame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(frame.type, static_cast<uint8_t>(net::FrameType::kPong));

  net::WireEstimateRequest est;
  est.doc = "bib";
  est.query = "//book";
  ASSERT_TRUE(client.SendFrame(net::FrameType::kEstimate,
                               net::EncodeEstimateRequest(est)));
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(frame.type, static_cast<uint8_t>(net::FrameType::kEstimateOk));
  auto estimate = net::DecodeEstimateOk(frame.payload);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(estimate.value(), 0.0);

  net::WireBatchRequest batch;
  batch.doc = "bib";
  batch.queries = {"//book", "//]bad", "//book/author"};
  ASSERT_TRUE(client.SendFrame(net::FrameType::kBatch,
                               net::EncodeBatchRequest(batch)));
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(frame.type, static_cast<uint8_t>(net::FrameType::kBatchOk));
  auto decoded = net::DecodeBatchResponse(frame.payload);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().results.size(), 3u);
  EXPECT_TRUE(decoded.value().results[0].ok);
  EXPECT_FALSE(decoded.value().results[1].ok);
  EXPECT_EQ(decoded.value().results[1].code, net::NackCode::kBadRequest);
  EXPECT_TRUE(decoded.value().results[2].ok);

  // Unknown doc: explicit NACK, connection stays usable.
  est.doc = "nope";
  ASSERT_TRUE(client.SendFrame(net::FrameType::kEstimate,
                               net::EncodeEstimateRequest(est)));
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(frame.type, static_cast<uint8_t>(net::FrameType::kNack));
  auto nack = net::DecodeNack(frame.payload);
  ASSERT_TRUE(nack.ok());
  EXPECT_EQ(nack.value().first, net::NackCode::kNotFound);

  ASSERT_TRUE(client.SendFrame(net::FrameType::kPing, ""));
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(frame.type, static_cast<uint8_t>(net::FrameType::kPong));
}

TEST_F(DaemonTest, RequestSizeLimits) {
  daemon::DaemonOptions options;
  options.server.max_request_bytes = 4096;
  StartDaemon(std::move(options));

  const std::string huge(1 << 20, 'x');
  auto resp = HttpRoundTrip(port(), "POST", "/estimate", huge);
  EXPECT_EQ(resp.status, 413);

  BinaryClient client(port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.SendFrame(net::FrameType::kEstimate, huge));
  net::WireFrame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(frame.type, static_cast<uint8_t>(net::FrameType::kNack));
  auto nack = net::DecodeNack(frame.payload);
  ASSERT_TRUE(nack.ok());
  EXPECT_EQ(nack.value().first, net::NackCode::kBadRequest);
}

// --- deadlines -----------------------------------------------------------

TEST_F(DaemonTest, DeadlineExpiredInQueueAnswers504) {
  daemon::DaemonOptions options;
  options.worker_threads = 1;
  StartDaemon(std::move(options));

  // Every handler sleeps 80ms; with one worker, a burst guarantees that
  // later requests outlive a 1ms deadline while queued.
  xsketch::testing::FaultPoints::Config slow;
  slow.delay_ms = 80;
  xsketch::testing::FaultPoints::Default().Arm("daemon.slow_handler", slow);

  std::vector<std::thread> threads;
  std::atomic<int> expired{0};
  std::atomic<int> served{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([this, &expired, &served] {
      auto resp = HttpRoundTrip(
          port(), "POST", "/estimate",
          R"({"doc":"bib","query":"//book","deadline_ms":1})");
      if (resp.status == 504) expired.fetch_add(1);
      if (resp.status == 200) served.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  // The first request may start before its deadline passes; everything
  // behind it in the queue must answer 504 — never hang, never 200 after
  // the deadline was hopeless.
  EXPECT_GE(expired.load(), 3);
  EXPECT_EQ(expired.load() + served.load(), 4);
}

TEST_F(DaemonTest, BatchDeadlinePropagatesToChunks) {
  // Service-level check of the chunk-boundary contract the daemon relies
  // on: an already-expired deadline abandons every chunk with explicit
  // DeadlineExceeded results and partial stats.
  xml::Document doc = data::MakeBibliography();
  auto frozen = std::make_shared<const core::FrozenSynopsis>(
      core::TwigXSketch::Coarsest(doc));
  service::ServiceOptions options;
  options.num_threads = 2;
  auto service = service::EstimationService::Create(frozen, options);
  ASSERT_TRUE(service.ok());

  auto twig = query::ParsePath("//book", frozen->tags());
  ASSERT_TRUE(twig.ok());
  std::vector<query::TwigQuery> queries(64, twig.value());

  service::BatchStats stats;
  auto results = service.value()->EstimateBatch(
      queries, &stats, service::EstimationService::Deadline(Clock::now()));
  ASSERT_EQ(results.size(), queries.size());
  EXPECT_TRUE(stats.deadline_exceeded);
  EXPECT_EQ(stats.abandoned, queries.size());
  EXPECT_EQ(stats.failed, 0u);  // abandoned is not failure
  for (const auto& r : results) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kDeadlineExceeded);
  }

  // A generous deadline runs everything.
  auto all = service.value()->EstimateBatch(
      queries, &stats, Clock::now() + std::chrono::seconds(30));
  EXPECT_FALSE(stats.deadline_exceeded);
  EXPECT_EQ(stats.abandoned, 0u);
  for (const auto& r : all) EXPECT_TRUE(r.ok());
}

// --- overload torture ----------------------------------------------------

TEST_F(DaemonTest, OverloadShedsExplicitlyAndBoundsAcceptedTail) {
  daemon::DaemonOptions options;
  options.worker_threads = 2;
  options.admission_queue_limit = 4;
  StartDaemon(std::move(options));

  // 25ms per request, 2 workers => ~80 req/s capacity. 16 closed-loop
  // clients issuing back-to-back requests drive well over 2x that.
  xsketch::testing::FaultPoints::Config slow;
  slow.delay_ms = 25;
  xsketch::testing::FaultPoints::Default().Arm("daemon.slow_handler", slow);

  constexpr int kClients = 16;
  constexpr int kPerClient = 8;
  std::atomic<int> ok_http{0}, shed_http{0}, ok_bin{0}, shed_bin{0};
  std::atomic<int> other{0};
  std::vector<double> accepted_ms[kClients];
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &ok_http, &shed_http, &ok_bin, &shed_bin,
                          &other, &accepted_ms] {
      if (c % 2 == 0) {
        for (int i = 0; i < kPerClient; ++i) {
          const auto start = Clock::now();
          auto resp = HttpRoundTrip(port(), "POST", "/estimate",
                                    R"({"doc":"bib","query":"//book"})");
          const double ms =
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count();
          if (resp.status == 200) {
            ok_http.fetch_add(1);
            accepted_ms[c].push_back(ms);
          } else if (resp.status == 429) {
            shed_http.fetch_add(1);
          } else {
            other.fetch_add(1);
          }
        }
      } else {
        BinaryClient client(port());
        if (!client.ok()) {
          other.fetch_add(kPerClient);
          return;
        }
        net::WireEstimateRequest est;
        est.doc = "bib";
        est.query = "//book";
        const std::string payload = net::EncodeEstimateRequest(est);
        for (int i = 0; i < kPerClient; ++i) {
          const auto start = Clock::now();
          if (!client.SendFrame(net::FrameType::kEstimate, payload)) {
            other.fetch_add(1);
            break;
          }
          net::WireFrame frame;
          if (!client.ReadFrame(&frame)) {
            other.fetch_add(1);
            break;
          }
          const double ms =
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count();
          if (frame.type == static_cast<uint8_t>(net::FrameType::kEstimateOk)) {
            ok_bin.fetch_add(1);
            accepted_ms[c].push_back(ms);
          } else if (frame.type ==
                     static_cast<uint8_t>(net::FrameType::kNack)) {
            auto nack = net::DecodeNack(frame.payload);
            ASSERT_TRUE(nack.ok());
            EXPECT_EQ(nack.value().first, net::NackCode::kOverload);
            shed_bin.fetch_add(1);
          } else {
            other.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every request got an explicit answer — success or overload, no
  // resets, no hangs, no silent drops.
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok_http.load() + shed_http.load() + ok_bin.load() +
                shed_bin.load(),
            kClients * kPerClient);
  // At 2x+ saturation both protocols must shed some and serve some.
  EXPECT_GT(shed_http.load() + shed_bin.load(), 0);
  EXPECT_GT(ok_http.load() + ok_bin.load(), 0);
  EXPECT_EQ(daemon_->stats().shed,
            static_cast<uint64_t>(shed_http.load() + shed_bin.load()));

  // Accepted latency is bounded by queue depth x handler time, not by
  // the offered load: limit 4 + 2 running + self = 7 x 25ms plus
  // overhead. 2s is an order of magnitude of slack for sanitizer builds.
  std::vector<double> all_ms;
  for (const auto& v : accepted_ms) {
    all_ms.insert(all_ms.end(), v.begin(), v.end());
  }
  ASSERT_FALSE(all_ms.empty());
  const double p99 = util::Percentile(all_ms, 0.99);
  EXPECT_LT(p99, 2000.0) << "accepted p99 " << p99 << "ms";
}

// --- graceful drain under load ------------------------------------------

TEST_F(DaemonTest, DrainUnderLoadFinishesInFlightAndReturns) {
  daemon::DaemonOptions options;
  options.worker_threads = 2;
  options.server.drain_grace_ms = 5000;
  StartDaemon(std::move(options));

  xsketch::testing::FaultPoints::Config slow;
  slow.delay_ms = 20;
  xsketch::testing::FaultPoints::Default().Arm("daemon.slow_handler", slow);

  std::atomic<bool> stop_load{false};
  std::atomic<int> answered{0}, refused{0}, transport{0};
  std::vector<std::thread> load;
  for (int c = 0; c < 6; ++c) {
    load.emplace_back([this, &stop_load, &answered, &refused, &transport] {
      while (!stop_load.load()) {
        auto resp = HttpRoundTrip(port(), "POST", "/estimate",
                                  R"({"doc":"bib","query":"//book"})");
        if (resp.status == 200 || resp.status == 429) {
          answered.fetch_add(1);
        } else if (resp.status == 503) {
          refused.fetch_add(1);  // explicit draining response
        } else {
          transport.fetch_add(1);  // connection refused/closed post-drain
        }
      }
    });
  }

  // Let the load ramp, then drain exactly the way the SIGTERM handler
  // does: one byte down the drain pipe.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const char byte = 'd';
  ASSERT_EQ(::write(daemon_->drain_fd(), &byte, 1), 1);

  const auto drain_start = Clock::now();
  loop_.join();  // Run() must return on its own
  const double drain_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - drain_start)
          .count();
  EXPECT_LT(drain_ms, 5000.0) << "drain took " << drain_ms << "ms";

  stop_load.store(true);
  for (auto& t : load) t.join();

  EXPECT_GT(answered.load(), 0);
  // In-flight work was answered, not dropped: the daemon counts every
  // dispatched request, and whatever it admitted it finished within the
  // grace (checked by Run() returning without force-closes above).
  daemon_.reset();
}

TEST_F(DaemonTest, HotSwapWhileServing) {
  StartDaemon({});
  auto before = HttpRoundTrip(port(), "POST", "/estimate",
                              R"({"doc":"bib","query":"//book"})");
  ASSERT_EQ(before.status, 200);
  EXPECT_NE(before.body.find("\"generation\":1"), std::string::npos);

  ASSERT_TRUE(daemon_->AddSketch("bib", *sketch_path_).ok());
  auto after = HttpRoundTrip(port(), "POST", "/estimate",
                             R"({"doc":"bib","query":"//book"})");
  ASSERT_EQ(after.status, 200);
  EXPECT_NE(after.body.find("\"generation\":2"), std::string::npos);

  // A swap whose load fails keeps the current generation serving.
  xsketch::testing::FaultPoints::Default().Arm("mmap_file.mmap");
  EXPECT_FALSE(daemon_->AddSketch("bib", *sketch_path_).ok());
  xsketch::testing::FaultPoints::Default().DisarmAll();
  auto still = HttpRoundTrip(port(), "POST", "/estimate",
                             R"({"doc":"bib","query":"//book"})");
  ASSERT_EQ(still.status, 200);
  EXPECT_NE(still.body.find("\"generation\":2"), std::string::npos);
}

}  // namespace
}  // namespace xsketch
