#include <gtest/gtest.h>

#include "data/figures.h"
#include "data/imdb.h"
#include "query/evaluator.h"
#include "query/twig.h"
#include "query/workload.h"
#include "query/xpath_parser.h"
#include "xml/parser.h"

namespace xsketch::query {
namespace {

xml::Document Parse(const char* text) {
  auto r = xml::ParseDocument(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

// --- TwigQuery model --------------------------------------------------------------

TEST(TwigTest, BuildAndTraverse) {
  TwigQuery twig;
  int root = twig.AddNode(TwigQuery::kNoParent, Axis::kDescendant, 1);
  int a = twig.AddNode(root, Axis::kChild, 2);
  int b = twig.AddNode(root, Axis::kChild, 3, /*existential=*/true);
  twig.AddNode(a, Axis::kChild, 4);
  EXPECT_EQ(twig.size(), 4);
  EXPECT_EQ(twig.binding_count(), 3);
  EXPECT_TRUE(twig.has_branching());
  EXPECT_TRUE(twig.has_descendant_axis());
  std::vector<int> order = twig.DepthFirstOrder();
  EXPECT_EQ(order, (std::vector<int>{root, a, 3, b}));
}

TEST(TwigTest, ChildrenOfExistentialAreExistential) {
  TwigQuery twig;
  int root = twig.AddNode(TwigQuery::kNoParent, Axis::kChild, 0);
  int e = twig.AddNode(root, Axis::kChild, 1, /*existential=*/true);
  int below = twig.AddNode(e, Axis::kChild, 2, /*existential=*/false);
  EXPECT_TRUE(twig.node(below).existential);
}

TEST(TwigTest, AvgInternalFanout) {
  TwigQuery twig;
  int root = twig.AddNode(TwigQuery::kNoParent, Axis::kChild, 0);
  twig.AddNode(root, Axis::kChild, 1);
  twig.AddNode(root, Axis::kChild, 2);
  int c = twig.AddNode(root, Axis::kChild, 3);
  twig.AddNode(c, Axis::kChild, 4);
  // Internal nodes: root (3 children), c (1 child) -> 2.0.
  EXPECT_DOUBLE_EQ(twig.AvgInternalFanout(), 2.0);
}

TEST(ValuePredicateTest, RangeSemantics) {
  ValuePredicate p{5, 10};
  EXPECT_TRUE(p.Matches(5));
  EXPECT_TRUE(p.Matches(10));
  EXPECT_FALSE(p.Matches(4));
  EXPECT_FALSE(p.Matches(11));
}

// --- XPath parser ------------------------------------------------------------------

class XPathParserTest : public ::testing::Test {
 protected:
  XPathParserTest() : doc_(data::MakeBibliography()) {}
  xml::Document doc_;
};

TEST_F(XPathParserTest, SimpleAbsolutePath) {
  auto r = ParsePath("/bib/author/name", doc_.tags());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const TwigQuery& t = r.value();
  ASSERT_EQ(t.size(), 3);
  EXPECT_EQ(t.node(0).axis, Axis::kChild);
  EXPECT_EQ(t.node(0).tag, doc_.LookupTag("bib"));
  EXPECT_EQ(t.node(2).tag, doc_.LookupTag("name"));
  EXPECT_EQ(t.binding_count(), 3);
}

TEST_F(XPathParserTest, DescendantAxis) {
  auto r = ParsePath("//paper/keyword", doc_.tags());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().node(0).axis, Axis::kDescendant);
  EXPECT_EQ(r.value().node(1).axis, Axis::kChild);
}

TEST_F(XPathParserTest, BranchingPredicate) {
  auto r = ParsePath("//author[book]/paper", doc_.tags());
  ASSERT_TRUE(r.ok());
  const TwigQuery& t = r.value();
  ASSERT_EQ(t.size(), 3);
  // Node 1 is the existential book branch, node 2 the paper output step.
  EXPECT_TRUE(t.node(1).existential);
  EXPECT_EQ(t.node(1).tag, doc_.LookupTag("book"));
  EXPECT_FALSE(t.node(2).existential);
  EXPECT_EQ(t.binding_count(), 2);
}

TEST_F(XPathParserTest, ValuePredicateOnBranch) {
  auto r = ParsePath("//paper[year>2000]/title", doc_.tags());
  ASSERT_TRUE(r.ok());
  const TwigQuery& t = r.value();
  int year = -1;
  for (int i = 0; i < t.size(); ++i) {
    if (t.node(i).tag == doc_.LookupTag("year")) year = i;
  }
  ASSERT_GE(year, 0);
  EXPECT_TRUE(t.node(year).existential);
  ASSERT_TRUE(t.node(year).pred.has_value());
  EXPECT_EQ(t.node(year).pred->lo, 2001);
}

TEST_F(XPathParserTest, SelfValuePredicate) {
  auto r = ParsePath("//year[.>=1999]", doc_.tags());
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().node(0).pred.has_value());
  EXPECT_EQ(r.value().node(0).pred->lo, 1999);
}

TEST_F(XPathParserTest, ComparisonOperators) {
  struct Case {
    const char* expr;
    int64_t lo, hi;
  } cases[] = {
      {"//year[.=2000]", 2000, 2000},  {"//year[.>2000]", 2001, INT64_MAX},
      {"//year[.>=2000]", 2000, INT64_MAX},
      {"//year[.<2000]", INT64_MIN, 1999},
      {"//year[.<=2000]", INT64_MIN, 2000},
  };
  for (const auto& c : cases) {
    auto r = ParsePath(c.expr, doc_.tags());
    ASSERT_TRUE(r.ok()) << c.expr;
    ASSERT_TRUE(r.value().node(0).pred.has_value()) << c.expr;
    EXPECT_EQ(r.value().node(0).pred->lo, c.lo) << c.expr;
    EXPECT_EQ(r.value().node(0).pred->hi, c.hi) << c.expr;
  }
}

TEST_F(XPathParserTest, NestedBranchPredicates) {
  auto r = ParsePath("//author[paper[keyword]/year>2000]/name", doc_.tags());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const TwigQuery& t = r.value();
  EXPECT_EQ(t.binding_count(), 2);  // author, name
  EXPECT_EQ(t.size(), 5);           // author, paper, keyword, year, name
}

TEST_F(XPathParserTest, MultiplePredicatesOnOneStep) {
  auto r = ParsePath("//author[book][paper]/name", doc_.tags());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 4);
  EXPECT_EQ(r.value().binding_count(), 2);
}

TEST_F(XPathParserTest, UnknownLabelMapsToUnknownTag) {
  auto r = ParsePath("//nonexistent/name", doc_.tags());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().node(0).tag, kUnknownTag);
}

TEST_F(XPathParserTest, ForClause) {
  auto r = ParseForClause(
      "for t0 in //author, t1 in t0/name, t2 in t0/paper/keyword",
      doc_.tags());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const TwigQuery& t = r.value();
  EXPECT_EQ(t.size(), 4);  // author, name, paper, keyword
  EXPECT_EQ(t.binding_count(), 4);
  EXPECT_EQ(t.node(0).tag, doc_.LookupTag("author"));
  // Both name and paper attach to author.
  EXPECT_EQ(t.node(0).children.size(), 2u);
}

TEST_F(XPathParserTest, ForClauseWithoutKeyword) {
  auto r = ParseForClause("t0 in //paper, t1 in t0/year", doc_.tags());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 2);
}

TEST_F(XPathParserTest, ForClauseUnboundVariableFails) {
  auto r = ParseForClause("for t0 in //author, t1 in tX/name", doc_.tags());
  EXPECT_FALSE(r.ok());
}

TEST_F(XPathParserTest, EmptyAndMalformedInputsFail) {
  EXPECT_FALSE(ParsePath("", doc_.tags()).ok());
  EXPECT_FALSE(ParsePath("//", doc_.tags()).ok());
  EXPECT_FALSE(ParsePath("//a[", doc_.tags()).ok());
  EXPECT_FALSE(ParsePath("//a[b", doc_.tags()).ok());
  EXPECT_FALSE(ParsePath("//a[.>]", doc_.tags()).ok());
  EXPECT_FALSE(ParseForClause("for", doc_.tags()).ok());
}

// Regression: the std::from_chars result used to be ignored, so an
// out-of-range literal silently became a partial/zero bound.
TEST_F(XPathParserTest, OutOfRangeLiteralsFail) {
  for (const char* expr :
       {"//year[.=99999999999999999999]",    // > INT64_MAX
        "//year[.=-99999999999999999999]",   // < INT64_MIN
        "//year[.<123456789012345678901234567890]"}) {
    auto r = ParsePath(expr, doc_.tags());
    ASSERT_FALSE(r.ok()) << expr;
    EXPECT_EQ(r.status().code(), util::StatusCode::kParseError) << expr;
  }
}

TEST_F(XPathParserTest, ComparisonBoundOverflowFails) {
  // value+1 / value-1 would wrap around int64.
  EXPECT_FALSE(ParsePath("//year[.>9223372036854775807]", doc_.tags()).ok());
  EXPECT_FALSE(
      ParsePath("//year[.<-9223372036854775808]", doc_.tags()).ok());
  // The inclusive operators at the same bounds are representable.
  auto ge = ParsePath("//year[.>=9223372036854775807]", doc_.tags());
  ASSERT_TRUE(ge.ok()) << ge.status().ToString();
  auto le = ParsePath("//year[.<=-9223372036854775808]", doc_.tags());
  ASSERT_TRUE(le.ok()) << le.status().ToString();
}

TEST_F(XPathParserTest, Int64ExtremesParseExactly) {
  auto r = ParsePath("//year[.=9223372036854775807]", doc_.tags());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool found = false;
  for (int i = 0; i < r.value().size(); ++i) {
    if (r.value().node(i).pred.has_value()) {
      EXPECT_EQ(r.value().node(i).pred->lo, INT64_MAX);
      EXPECT_EQ(r.value().node(i).pred->hi, INT64_MAX);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(XPathParserTest, ExplicitPlusSignParses) {
  auto r = ParsePath("//year[.=+1999]", doc_.tags());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(ParsePath("//year[.=+]", doc_.tags()).ok());
  EXPECT_FALSE(ParsePath("//year[.=-]", doc_.tags()).ok());
}

// --- Exact evaluator ----------------------------------------------------------------

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : doc_(data::MakeBibliography()), eval_(doc_) {}

  uint64_t Count(const char* path) {
    auto r = ParsePath(path, doc_.tags());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return eval_.Selectivity(r.value());
  }
  uint64_t CountFor(const char* clause) {
    auto r = ParseForClause(clause, doc_.tags());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return eval_.Selectivity(r.value());
  }

  xml::Document doc_;
  ExactEvaluator eval_;
};

TEST_F(EvaluatorTest, SinglePathCounts) {
  EXPECT_EQ(Count("/bib"), 1u);
  EXPECT_EQ(Count("/bib/author"), 3u);
  EXPECT_EQ(Count("//author"), 3u);
  EXPECT_EQ(Count("//paper"), 4u);
  EXPECT_EQ(Count("//paper/keyword"), 5u);
  EXPECT_EQ(Count("//keyword"), 5u);
  EXPECT_EQ(Count("//book"), 1u);
}

TEST_F(EvaluatorTest, AbsolutePathMustStartAtRoot) {
  EXPECT_EQ(Count("/author"), 0u);  // root element is bib, not author
}

TEST_F(EvaluatorTest, BranchingPredicateSemantics) {
  // Only a2 has a book.
  EXPECT_EQ(Count("//author[book]"), 1u);
  EXPECT_EQ(Count("//author[book]/paper"), 1u);
  // All authors have papers.
  EXPECT_EQ(Count("//author[paper]"), 3u);
  // Paper with year > 2000: p5 (2002) and p8 (2001).
  EXPECT_EQ(Count("//paper[year>2000]"), 2u);
  EXPECT_EQ(Count("//author[paper/year>2000]"), 2u);
}

TEST_F(EvaluatorTest, ValuePredicateOnSelf) {
  EXPECT_EQ(Count("//year[.>2000]"), 2u);
  EXPECT_EQ(Count("//year[.=1999]"), 1u);
  EXPECT_EQ(Count("//year[.<1900]"), 0u);
}

TEST_F(EvaluatorTest, TwigMultiplicities) {
  // Per author: name_count * keyword_count_under_papers summed as tuples:
  // a1: 1 * (2+1) = 3; a2: 1 * 1 = 1; a3: 1 * 1 = 1 -> 5.
  EXPECT_EQ(CountFor("for t0 in //author, t1 in t0/name, "
                     "t2 in t0/paper/keyword"),
            5u);
  // Pairs of keywords under the same paper: p4 contributes 2*2, others 1.
  EXPECT_EQ(CountFor("for t0 in //paper, t1 in t0/keyword, "
                     "t2 in t0/keyword"),
            4u + 1 + 1 + 1);
}

TEST_F(EvaluatorTest, PaperExample21) {
  // Example 2.1: authors with name, paper[year>2000], title and keyword.
  // a1 via p5 (title, 1 keyword) and a2 via p8 (title, 1 keyword)... our
  // bibliography yields 2 tuples (p5 has one keyword).
  EXPECT_EQ(CountFor("for t0 in //author, t1 in t0/name, "
                     "t2 in t0/paper[year>2000], t3 in t2/title, "
                     "t4 in t2/keyword"),
            2u);
}

TEST_F(EvaluatorTest, ZeroSelectivityForAbsentStructure) {
  EXPECT_EQ(Count("//book/keyword"), 0u);
  EXPECT_EQ(Count("//nonexistent"), 0u);
  EXPECT_EQ(CountFor("for t0 in //book, t1 in t0/year"), 0u);
}

TEST_F(EvaluatorTest, DescendantAxisInside) {
  xml::Document doc = Parse(
      "<r><a><x><b>1</b></x><b>2</b></a><a><b>3</b></a></r>");
  ExactEvaluator eval(doc);
  auto q = ParsePath("//a//b", doc.tags());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(eval.Selectivity(q.value()), 3u);
}

TEST_F(EvaluatorTest, Figure4Documents) {
  xml::Document a = data::MakeFigure4A();
  auto q = ParseForClause("for t0 in //a, t1 in t0/b, t2 in t0/c", a.tags());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(ExactEvaluator(a).Selectivity(q.value()), 2000u);
}

// --- Workload generation ---------------------------------------------------------------

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : doc_(data::GenerateImdb({.seed = 5, .scale = 0.05})) {}
  xml::Document doc_;
};

TEST_F(WorkloadTest, PositiveWorkloadAllPositive) {
  WorkloadOptions opts;
  opts.seed = 11;
  opts.num_queries = 50;
  Workload w = GeneratePositiveWorkload(doc_, opts);
  ASSERT_EQ(w.queries.size(), 50u);
  ExactEvaluator eval(doc_);
  for (const auto& q : w.queries) {
    EXPECT_GT(q.true_count, 0u);
    EXPECT_EQ(eval.Selectivity(q.twig), q.true_count);
  }
}

TEST_F(WorkloadTest, NodeBudgetRespected) {
  WorkloadOptions opts;
  opts.seed = 12;
  opts.num_queries = 50;
  opts.min_nodes = 4;
  opts.max_nodes = 8;
  Workload w = GeneratePositiveWorkload(doc_, opts);
  for (const auto& q : w.queries) {
    EXPECT_GE(q.twig.size(), 4);
    EXPECT_LE(q.twig.size(), 8 + 1);  // +1: one-deeper branch extension
  }
}

TEST_F(WorkloadTest, ValuePredicateFraction) {
  WorkloadOptions opts;
  opts.seed = 13;
  opts.num_queries = 60;
  opts.value_pred_fraction = 1.0;
  Workload w = GeneratePositiveWorkload(doc_, opts);
  int with_preds = 0;
  for (const auto& q : w.queries) {
    if (q.twig.value_predicate_count() > 0) ++with_preds;
    EXPECT_LE(q.twig.value_predicate_count(), 2);
    EXPECT_GT(q.true_count, 0u);  // predicates anchored on witnesses
  }
  EXPECT_EQ(with_preds, 60);
}

TEST_F(WorkloadTest, SimplePathWorkloadHasNoBranchingPredicates) {
  WorkloadOptions opts;
  opts.seed = 14;
  opts.num_queries = 40;
  opts.existential_prob = 0.0;
  Workload w = GeneratePositiveWorkload(doc_, opts);
  for (const auto& q : w.queries) {
    EXPECT_FALSE(q.twig.has_branching());
  }
}

TEST_F(WorkloadTest, NegativeWorkloadAllZero) {
  WorkloadOptions opts;
  opts.seed = 15;
  opts.num_queries = 30;
  Workload w = GenerateNegativeWorkload(doc_, opts);
  ASSERT_EQ(w.queries.size(), 30u);
  ExactEvaluator eval(doc_);
  for (const auto& q : w.queries) {
    EXPECT_EQ(q.true_count, 0u);
    EXPECT_EQ(eval.Selectivity(q.twig), 0u);
  }
}

TEST_F(WorkloadTest, SanityBoundIsLowPercentile) {
  WorkloadOptions opts;
  opts.seed = 16;
  opts.num_queries = 100;
  Workload w = GeneratePositiveWorkload(doc_, opts);
  const double s = w.SanityBound(0.10);
  int below = 0;
  for (const auto& q : w.queries) {
    if (static_cast<double>(q.true_count) < s) ++below;
  }
  EXPECT_LE(below, 11);  // at most ~10% lie strictly below the bound
  EXPECT_GE(s, 1.0);
}

TEST_F(WorkloadTest, AvgRelativeErrorMetric) {
  Workload w;
  WorkloadQuery q1, q2;
  q1.true_count = 100;
  q2.true_count = 4;
  w.queries.push_back(std::move(q1));
  w.queries.push_back(std::move(q2));
  // sanity bound 10: q1 err = |90-100|/100 = 0.1; q2 err = |8-4|/10 = 0.4.
  EXPECT_NEAR(AvgRelativeError(w, {90.0, 8.0}, 10.0), 0.25, 1e-9);
}

TEST_F(WorkloadTest, DeterministicForSeed) {
  WorkloadOptions opts;
  opts.seed = 17;
  opts.num_queries = 20;
  Workload a = GeneratePositiveWorkload(doc_, opts);
  Workload b = GeneratePositiveWorkload(doc_, opts);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].true_count, b.queries[i].true_count);
    EXPECT_EQ(a.queries[i].twig.size(), b.queries[i].twig.size());
  }
}

}  // namespace
}  // namespace xsketch::query

namespace xsketch::query {
namespace {

// --- Additional parser and generator edge cases ---------------------------------------

TEST(XPathParserEdgeCases, DescendantAxisInsideBranchPredicate) {
  xml::Document doc = data::MakeBibliography();
  auto r = ParsePath("//author[//keyword]/name", doc.tags());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const TwigQuery& t = r.value();
  // author, keyword (existential descendant), name.
  ASSERT_EQ(t.size(), 3);
  EXPECT_TRUE(t.node(1).existential);
  EXPECT_EQ(t.node(1).axis, Axis::kDescendant);
  EXPECT_EQ(ExactEvaluator(doc).Selectivity(t), 3u);  // all authors qualify
}

TEST(XPathParserEdgeCases, WhitespaceTolerance) {
  xml::Document doc = data::MakeBibliography();
  auto r = ParseForClause(
      "  for   t0   in   //author ,  t1 in t0 / name  ", doc.tags());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 2);
}

TEST(XPathParserEdgeCases, NegativeNumbersInPredicates) {
  xml::Document doc = data::MakeBibliography();
  auto r = ParsePath("//year[.>=-5]", doc.tags());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().node(0).pred->lo, -5);
}

TEST(XPathParserEdgeCases, ToStringRoundTripsThroughParser) {
  xml::Document doc = data::MakeBibliography();
  auto r = ParseForClause(
      "for t0 in //author, t1 in t0/name, t2 in t0/paper[year>2000]",
      doc.tags());
  ASSERT_TRUE(r.ok());
  const std::string rendered = r.value().ToString(doc.tags());
  // The rendering names every node and marks the existential year branch.
  EXPECT_NE(rendered.find("//author"), std::string::npos);
  EXPECT_NE(rendered.find("(exists)"), std::string::npos);
  EXPECT_NE(rendered.find(">=2001"), std::string::npos);
}

TEST(WorkloadEdgeCases, AbsoluteRootsOnly) {
  xml::Document doc = data::MakeBibliography();
  WorkloadOptions opts;
  opts.seed = 61;
  opts.num_queries = 20;
  opts.descendant_root_prob = 0.0;
  Workload w = GeneratePositiveWorkload(doc, opts);
  for (const auto& q : w.queries) {
    EXPECT_EQ(q.twig.node(0).axis, Axis::kChild);
    EXPECT_EQ(q.twig.node(0).tag, doc.LookupTag("bib"));
  }
}

TEST(WorkloadEdgeCases, TinyDocumentStillGenerates) {
  auto parsed = xml::ParseDocument("<r><a><b/></a><a><b/><c/></a></r>");
  ASSERT_TRUE(parsed.ok());
  WorkloadOptions opts;
  opts.seed = 62;
  opts.num_queries = 10;
  opts.min_nodes = 2;
  opts.max_nodes = 4;
  Workload w = GeneratePositiveWorkload(parsed.value(), opts);
  EXPECT_EQ(w.queries.size(), 10u);
  for (const auto& q : w.queries) EXPECT_GT(q.true_count, 0u);
}

TEST(TwigTest, ToStringRendersUnknownTagsWithoutCrashing) {
  // The XPath parser maps absent labels to kUnknownTag; such queries are
  // valid (they match nothing) and must print, not abort on an interner
  // lookup (regression: found by fuzz_xpath).
  auto parsed = xml::ParseDocument("<r><a/></r>");
  ASSERT_TRUE(parsed.ok());
  const xml::Document& doc = parsed.value();
  auto q = ParsePath("//nosuchtag", doc.tags());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const std::string s = q.value().ToString(doc.tags());
  EXPECT_NE(s.find("<unknown:"), std::string::npos) << s;
  EXPECT_EQ(ExactEvaluator(doc).Selectivity(q.value()), 0u);
}

TEST(TwigTest, EmptyValueRangeIsValid) {
  // Pinned semantics (see twig.h): lo > hi is a valid, empty predicate.
  TwigQuery q;
  q.AddNode(TwigQuery::kNoParent, Axis::kChild, 0);
  q.mutable_node(0).pred = ValuePredicate{5, -5};
  EXPECT_TRUE(q.Validate().ok());
}

}  // namespace
}  // namespace xsketch::query
