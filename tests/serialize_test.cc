#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/builder.h"
#include "core/estimator.h"
#include "core/serialize.h"
#include "data/figures.h"
#include "data/imdb.h"
#include "query/workload.h"
#include "query/xpath_parser.h"

namespace xsketch::core {
namespace {

TwigXSketch BuildRefined(const xml::Document& doc, size_t extra_bytes,
                         bool extensions = false) {
  BuildOptions opts;
  opts.seed = 5;
  opts.candidates_per_iteration = 6;
  opts.sample_queries = 10;
  opts.allow_backward_counts = extensions;
  opts.allow_value_correlation = extensions;
  opts.budget_bytes =
      TwigXSketch::Coarsest(doc, opts.coarsest).SizeBytes() + extra_bytes;
  return XBuild(doc, opts).Build();
}

TEST(SerializeTest, RoundTripPreservesEstimates) {
  xml::Document doc = data::GenerateImdb({.seed = 31, .scale = 0.03});
  TwigXSketch original = BuildRefined(doc, 4096);
  const std::string bytes = SaveSketch(original);

  auto restored = LoadSketch(bytes, doc);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().SizeBytes(), original.SizeBytes());
  EXPECT_EQ(restored.value().synopsis().node_count(),
            original.synopsis().node_count());

  // Every estimate must be bit-identical: the restored sketch re-derives
  // the same histograms from the same document.
  query::WorkloadOptions wopts;
  wopts.seed = 32;
  wopts.num_queries = 25;
  wopts.value_pred_fraction = 0.5;
  query::Workload w = query::GeneratePositiveWorkload(doc, wopts);
  Estimator before(original);
  Estimator after(restored.value());
  for (const auto& q : w.queries) {
    EXPECT_EQ(before.Estimate(q.twig), after.Estimate(q.twig));
  }
}

TEST(SerializeTest, RoundTripWithExtensions) {
  xml::Document doc = data::GenerateImdb({.seed = 33, .scale = 0.03});
  TwigXSketch original = BuildRefined(doc, 3072, /*extensions=*/true);
  auto restored = LoadSketch(SaveSketch(original), doc);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().HasBackwardDims(), original.HasBackwardDims());
  EXPECT_EQ(restored.value().SizeBytes(), original.SizeBytes());
}

TEST(SerializeTest, RejectsWrongDocument) {
  xml::Document doc = data::GenerateImdb({.seed = 31, .scale = 0.03});
  xml::Document other = data::GenerateImdb({.seed = 99, .scale = 0.03});
  xml::Document tiny = data::MakeBibliography();
  const std::string bytes = SaveSketch(TwigXSketch::Coarsest(doc));
  EXPECT_FALSE(LoadSketch(bytes, tiny).ok());   // different size
  EXPECT_FALSE(LoadSketch(bytes, other).ok());  // different elements
}

TEST(SerializeTest, RejectsCorruptInput) {
  xml::Document doc = data::MakeBibliography();
  const std::string bytes = SaveSketch(TwigXSketch::Coarsest(doc));

  EXPECT_FALSE(LoadSketch("", doc).ok());
  EXPECT_FALSE(LoadSketch("garbage", doc).ok());
  // Trailing junk is rejected.
  EXPECT_FALSE(LoadSketch(bytes + "x", doc).ok());
  // Flipped magic is rejected.
  std::string bad = bytes;
  bad[0] = 'Y';
  EXPECT_FALSE(LoadSketch(bad, doc).ok());
}

TEST(SerializeTest, RejectsTruncationAtEveryByte) {
  // Every strict prefix cuts some field short (the tail is length-counted,
  // so no prefix is a complete file): each must fail cleanly, never crash.
  xml::Document doc = data::GenerateImdb({.seed = 31, .scale = 0.03});
  const std::string bytes = SaveSketch(BuildRefined(doc, 2048));
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(LoadSketch(bytes.substr(0, len), doc).ok()) << len;
  }
}

TEST(SerializeTest, FormatIsExplicitLittleEndian) {
  // Byte-level pin of the XSK2 header so an accidental return to
  // host-endian words fails on any platform: magic, then the document
  // element count as a little-endian u32.
  xml::Document doc = data::MakeBibliography();
  const std::string bytes = SaveSketch(TwigXSketch::Coarsest(doc));
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 4), "XSK2");
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data()) + 4;
  const uint32_t doc_size = static_cast<uint32_t>(p[0]) |
                            static_cast<uint32_t>(p[1]) << 8 |
                            static_cast<uint32_t>(p[2]) << 16 |
                            static_cast<uint32_t>(p[3]) << 24;
  EXPECT_EQ(doc_size, doc.size());
}

TEST(SerializeTest, RejectsLegacyXsk1WithClearError) {
  xml::Document doc = data::MakeBibliography();
  std::string bytes = SaveSketch(TwigXSketch::Coarsest(doc));
  bytes[3] = '1';  // pretend it was saved by the host-endian XSK1 writer
  auto r = LoadSketch(bytes, doc);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("XSK1"), std::string::npos)
      << r.status().ToString();
}

TEST(SerializeTest, FileRoundTrip) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch original = TwigXSketch::Coarsest(doc);
  const std::string path = ::testing::TempDir() + "/sketch.xsk";
  ASSERT_TRUE(SaveSketchToFile(original, path).ok());
  auto restored = LoadSketchFromFile(path, doc);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().SizeBytes(), original.SizeBytes());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadSketchFromFile(path, doc).ok());
}

TEST(SerializeTest, RestoreValidatesScopes) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  std::vector<SynNodeId> partition(doc.size());
  for (xml::NodeId e = 0; e < doc.size(); ++e) {
    partition[e] = sketch.synopsis().NodeOf(e);
  }
  auto configs = sketch.ExportConfigs();
  // Point a scope at a nonexistent edge.
  configs[0].scope.push_back(CountRef{true, 0, 0});
  auto restored = TwigXSketch::Restore(doc, partition, configs);
  EXPECT_FALSE(restored.ok());
}

TEST(SerializeTest, RestoreRejectsOutOfRangeScopeNodeIds) {
  // Regression (found by fuzz_sketch_load): CountRef node ids beyond the
  // synopsis node count must be rejected, not used to index edge lists.
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  std::vector<SynNodeId> partition(doc.size());
  for (xml::NodeId e = 0; e < doc.size(); ++e) {
    partition[e] = sketch.synopsis().NodeOf(e);
  }
  auto bad_scope = sketch.ExportConfigs();
  bad_scope[0].scope.push_back(CountRef{true, 0x7FFFFFFFu, 0});
  EXPECT_FALSE(TwigXSketch::Restore(doc, partition, bad_scope).ok());

  auto bad_value_scope = sketch.ExportConfigs();
  bad_value_scope[0].value_scope.push_back(CountRef{true, 0, 0x7FFFFFFFu});
  EXPECT_FALSE(TwigXSketch::Restore(doc, partition, bad_value_scope).ok());
}

TEST(SerializeTest, RestoreRejectsZeroNodeSynopsis) {
  // A synopsis with zero nodes cannot summarize a non-empty document:
  // Restore rejects it (and the byte format rejects node_count == 0).
  xml::Document doc = data::MakeBibliography();
  std::vector<SynNodeId> partition(doc.size(), 0);
  auto restored = TwigXSketch::Restore(doc, partition, {});
  EXPECT_FALSE(restored.ok());
}

TEST(SerializeTest, EmptyHistogramsRoundTrip) {
  // max_initial_dims = 0 yields a pure graph synopsis: every node
  // summary has an empty scope and no edge histogram. The format must
  // round-trip that shape bit-identically.
  xml::Document doc = data::GenerateImdb({.seed = 35, .scale = 0.02});
  CoarsestOptions copts;
  copts.max_initial_dims = 0;
  TwigXSketch original = TwigXSketch::Coarsest(doc, copts);
  const std::string bytes = SaveSketch(original);
  auto restored = LoadSketch(bytes, doc);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(SaveSketch(restored.value()), bytes);

  query::WorkloadOptions wopts;
  wopts.seed = 36;
  wopts.num_queries = 15;
  query::Workload w = query::GeneratePositiveWorkload(doc, wopts);
  Estimator before(original);
  Estimator after(restored.value());
  for (const auto& q : w.queries) {
    EXPECT_EQ(before.Estimate(q.twig), after.Estimate(q.twig));
  }
}

TEST(SerializeTest, MaxBucketCountHistogramsRoundTrip) {
  // Bucket budgets far above the number of distinct count points keep
  // every point as its own bucket — the largest histograms the builder
  // can produce. Round trip must preserve them exactly.
  xml::Document doc = data::GenerateImdb({.seed = 37, .scale = 0.02});
  CoarsestOptions copts;
  copts.initial_buckets = 4096;
  copts.initial_value_buckets = 4096;
  copts.max_initial_dims = 2;
  TwigXSketch original = TwigXSketch::Coarsest(doc, copts);
  const std::string bytes = SaveSketch(original);
  auto restored = LoadSketch(bytes, doc);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(SaveSketch(restored.value()), bytes);
  EXPECT_EQ(restored.value().SizeBytes(), original.SizeBytes());

  query::WorkloadOptions wopts;
  wopts.seed = 38;
  wopts.num_queries = 15;
  wopts.value_pred_fraction = 0.5;
  query::Workload w = query::GeneratePositiveWorkload(doc, wopts);
  Estimator before(original);
  Estimator after(restored.value());
  for (const auto& q : w.queries) {
    EXPECT_EQ(before.Estimate(q.twig), after.Estimate(q.twig));
  }
}

TEST(SerializeTest, SingleByteCorruptionsNeverCrashTheLoader) {
  // Deterministic mini-fuzz: flip each byte of a saved sketch in turn,
  // and truncate at every prefix length. Every mutation must either load
  // cleanly or fail with a Status — never crash (pins the bounds checks
  // fuzz_sketch_load exercises randomly).
  xml::Document doc = data::MakeBibliography();
  const std::string bytes = SaveSketch(TwigXSketch::Coarsest(doc));
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    auto r = LoadSketch(mutated, doc);
    if (r.ok()) {
      EXPECT_TRUE(LoadSketch(SaveSketch(r.value()), doc).ok()) << i;
    }
  }
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(LoadSketch(bytes.substr(0, len), doc).ok()) << len;
  }
}

}  // namespace
}  // namespace xsketch::core
