#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hist/edge_histogram.h"
#include "hist/value_histogram.h"
#include "util/random.h"

namespace xsketch::hist {
namespace {

// --- ValueHistogram --------------------------------------------------------------

TEST(ValueHistogramTest, EmptyInput) {
  ValueHistogram h = ValueHistogram::Build({}, 8);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.EstimateFraction(0, 100), 0.0);
}

TEST(ValueHistogramTest, ExactOnFewDistinctValues) {
  ValueHistogram h = ValueHistogram::Build({1, 1, 2, 3, 3, 3}, 8);
  EXPECT_NEAR(h.EstimateFraction(1, 1), 2.0 / 6, 1e-9);
  EXPECT_NEAR(h.EstimateFraction(3, 3), 3.0 / 6, 1e-9);
  EXPECT_NEAR(h.EstimateFraction(1, 3), 1.0, 1e-9);
  EXPECT_NEAR(h.EstimateFraction(4, 9), 0.0, 1e-9);
}

TEST(ValueHistogramTest, EquiDepthBucketsBalanceCounts) {
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i);
  ValueHistogram h = ValueHistogram::Build(values, 10);
  EXPECT_LE(h.bucket_count(), 10);
  for (const auto& b : h.buckets()) {
    EXPECT_NEAR(static_cast<double>(b.count), 100.0, 1.0);
  }
}

TEST(ValueHistogramTest, RangeFractionApproximatesUniform) {
  std::vector<int64_t> values;
  for (int i = 0; i < 10000; ++i) values.push_back(i % 1000);
  ValueHistogram h = ValueHistogram::Build(values, 16);
  // 10% range.
  EXPECT_NEAR(h.EstimateFraction(100, 199), 0.1, 0.02);
  EXPECT_NEAR(h.EstimateFraction(0, 999), 1.0, 1e-9);
}

TEST(ValueHistogramTest, SkewedDataEqualRunsNotSplit) {
  // 90% of values are 7; the run must stay in one bucket.
  std::vector<int64_t> values(900, 7);
  for (int i = 0; i < 100; ++i) values.push_back(1000 + i);
  ValueHistogram h = ValueHistogram::Build(values, 4);
  EXPECT_NEAR(h.EstimateFraction(7, 7), 0.9, 1e-9);
}

TEST(ValueHistogramTest, NegativeValues) {
  ValueHistogram h = ValueHistogram::Build({-10, -5, 0, 5, 10}, 5);
  EXPECT_NEAR(h.EstimateFraction(-10, -5), 0.4, 1e-9);
  EXPECT_NEAR(h.EstimateFraction(-100, 100), 1.0, 1e-9);
}

TEST(ValueHistogramTest, SizeScalesWithBuckets) {
  std::vector<int64_t> values;
  for (int i = 0; i < 100; ++i) values.push_back(i);
  ValueHistogram h4 = ValueHistogram::Build(values, 4);
  ValueHistogram h16 = ValueHistogram::Build(values, 16);
  EXPECT_LT(h4.SizeBytes(), h16.SizeBytes());
}

// --- JointDistribution -------------------------------------------------------------

TEST(JointDistributionTest, AccumulatesWeights) {
  JointDistribution d(2);
  d.Add({1, 2});
  d.Add({1, 2});
  d.Add({3, 4}, 5);
  EXPECT_EQ(d.total_weight(), 7u);
  EXPECT_EQ(d.distinct_points(), 2u);
  uint64_t w12 = 0;
  d.ForEach([&](const std::vector<uint32_t>& p, uint64_t w) {
    if (p == std::vector<uint32_t>{1, 2}) w12 = w;
  });
  EXPECT_EQ(w12, 2u);
}

// --- EdgeHistogram -----------------------------------------------------------------

TEST(EdgeHistogramTest, ExactWhenBudgetSuffices) {
  JointDistribution d(2);
  d.Add({10, 100}, 1);
  d.Add({100, 10}, 1);
  EdgeHistogram h = EdgeHistogram::Build(d, 4);
  EXPECT_EQ(h.bucket_count(), 2);
  // Expected product: 0.5*1000 + 0.5*1000 = 1000 (the Fig-4A computation).
  EXPECT_NEAR(h.ExpectedProduct({0, 1}), 1000.0, 1e-9);
  EXPECT_NEAR(h.MarginalMean(0), 55.0, 1e-9);
  EXPECT_NEAR(h.MarginalMean(1), 55.0, 1e-9);
}

TEST(EdgeHistogramTest, Figure4BDistinguishedFromA) {
  JointDistribution d(2);
  d.Add({100, 100}, 1);
  d.Add({10, 10}, 1);
  EdgeHistogram h = EdgeHistogram::Build(d, 4);
  // 0.5*10000 + 0.5*100 = 5050 (Fig-4B: 2 * 5050 = 10100 tuples).
  EXPECT_NEAR(h.ExpectedProduct({0, 1}), 5050.0, 1e-9);
}

TEST(EdgeHistogramTest, SingleBucketCollapsesToMeans) {
  JointDistribution d(2);
  d.Add({10, 100}, 1);
  d.Add({100, 10}, 1);
  EdgeHistogram h = EdgeHistogram::Build(d, 1);
  ASSERT_EQ(h.bucket_count(), 1);
  // Means preserved exactly; the product degrades to mean*mean.
  EXPECT_NEAR(h.MarginalMean(0), 55.0, 1e-9);
  EXPECT_NEAR(h.ExpectedProduct({0, 1}), 55.0 * 55.0, 1e-9);
}

TEST(EdgeHistogramTest, MarginalMeansPreservedUnderMerging) {
  util::Rng rng(4);
  JointDistribution d(3);
  double exact_mean[3] = {0, 0, 0};
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    std::vector<uint32_t> p = {
        static_cast<uint32_t>(rng.Uniform(50)),
        static_cast<uint32_t>(rng.Uniform(10)),
        static_cast<uint32_t>(rng.Uniform(5)),
    };
    for (int k = 0; k < 3; ++k) exact_mean[k] += p[k];
    d.Add(p);
  }
  for (double& m : exact_mean) m /= n;
  for (int buckets : {1, 4, 16, 64}) {
    EdgeHistogram h = EdgeHistogram::Build(d, buckets);
    EXPECT_LE(h.bucket_count(), buckets);
    for (int k = 0; k < 3; ++k) {
      EXPECT_NEAR(h.MarginalMean(k), exact_mean[k], 1e-6)
          << "buckets=" << buckets << " dim=" << k;
    }
    double total = 0;
    for (const auto& b : h.buckets()) total += b.fraction;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(EdgeHistogramTest, MoreBucketsImproveProductAccuracy) {
  // Anti-correlated dims: independence within one big bucket is maximally
  // wrong; accuracy must improve monotonically-ish with buckets.
  JointDistribution d(2);
  for (uint32_t i = 0; i < 64; ++i) d.Add({i, 64 - i});
  double exact = 0;
  for (uint32_t i = 0; i < 64; ++i) exact += i * (64.0 - i);
  exact /= 64;

  EdgeHistogram h1 = EdgeHistogram::Build(d, 1);
  EdgeHistogram h8 = EdgeHistogram::Build(d, 8);
  EdgeHistogram h64 = EdgeHistogram::Build(d, 64);
  const double e1 = std::abs(h1.ExpectedProduct({0, 1}) - exact);
  const double e8 = std::abs(h8.ExpectedProduct({0, 1}) - exact);
  const double e64 = std::abs(h64.ExpectedProduct({0, 1}) - exact);
  EXPECT_LT(e8, e1);
  EXPECT_LE(e64, 1e-9);  // exact representation
}

TEST(EdgeHistogramTest, ConditionOnCoveredValue) {
  JointDistribution d(2);  // dims: (k, p)
  d.Add({2, 2}, 1);   // p4: k=2 with p=2
  d.Add({1, 2}, 1);   // p5
  d.Add({1, 1}, 2);   // p8, p9
  EdgeHistogram h = EdgeHistogram::Build(d, 8);
  // Condition on p=2: expect k distribution {2: 0.5, 1: 0.5}.
  auto pts = h.Condition({{1, 2.0}});
  double ek = 0;
  for (const auto& wp : pts) ek += wp.prob * wp.values[0];
  EXPECT_NEAR(ek, 1.5, 1e-9);
  // Condition on p=1: k = 1 deterministically.
  pts = h.Condition({{1, 1.0}});
  ek = 0;
  for (const auto& wp : pts) ek += wp.prob * wp.values[0];
  EXPECT_NEAR(ek, 1.0, 1e-9);
}

TEST(EdgeHistogramTest, ConditionWithNoGivenReturnsAllBuckets) {
  JointDistribution d(1);
  d.Add({1}, 3);
  d.Add({5}, 1);
  EdgeHistogram h = EdgeHistogram::Build(d, 4);
  auto pts = h.Condition({});
  double total = 0;
  for (const auto& wp : pts) total += wp.prob;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(pts.size(), 2u);
}

TEST(EdgeHistogramTest, ConditionFallsBackOnUncoveredValue) {
  JointDistribution d(2);
  d.Add({3, 10}, 1);
  d.Add({7, 20}, 1);
  EdgeHistogram h = EdgeHistogram::Build(d, 4);
  // Conditioning value 15 lies in a gap between boxes: the soft fallback
  // must still return a normalized distribution.
  auto pts = h.Condition({{1, 15.0}});
  ASSERT_FALSE(pts.empty());
  double total = 0;
  for (const auto& wp : pts) total += wp.prob;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EdgeHistogramTest, EmptyDistribution) {
  JointDistribution d(2);
  EdgeHistogram h = EdgeHistogram::Build(d, 4);
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(h.Condition({}).empty());
  EXPECT_EQ(h.ExpectedProduct({0, 1}), 0.0);
}

TEST(EdgeHistogramTest, SizeBytesScalesWithDimsAndBuckets) {
  JointDistribution d2(2);
  for (uint32_t i = 0; i < 32; ++i) d2.Add({i, i});
  EdgeHistogram small = EdgeHistogram::Build(d2, 4);
  EdgeHistogram large = EdgeHistogram::Build(d2, 32);
  EXPECT_LT(small.SizeBytes(), large.SizeBytes());
}

// Property sweep: bucketization never loses or invents probability mass and
// keeps means exact for a range of shapes.
class EdgeHistogramPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(EdgeHistogramPropertyTest, MassAndMeansInvariant) {
  const auto [dims, points, buckets] = GetParam();
  util::Rng rng(dims * 1000 + points + buckets);
  JointDistribution d(dims);
  std::vector<double> mean(dims, 0.0);
  uint64_t total = 0;
  for (int i = 0; i < points; ++i) {
    std::vector<uint32_t> p(dims);
    for (int k = 0; k < dims; ++k) {
      p[k] = static_cast<uint32_t>(rng.Uniform(1 << (3 + k)));
    }
    const uint64_t w = 1 + rng.Uniform(9);
    for (int k = 0; k < dims; ++k) mean[k] += static_cast<double>(p[k]) * w;
    total += w;
    d.Add(p, w);
  }
  for (double& m : mean) m /= static_cast<double>(total);

  EdgeHistogram h = EdgeHistogram::Build(d, buckets);
  EXPECT_LE(h.bucket_count(), buckets);
  double mass = 0;
  for (const auto& b : h.buckets()) {
    mass += b.fraction;
    for (int k = 0; k < dims; ++k) {
      EXPECT_GE(b.mean[k], static_cast<double>(b.lo[k]) - 1e-9);
      EXPECT_LE(b.mean[k], static_cast<double>(b.hi[k]) + 1e-9);
    }
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);
  for (int k = 0; k < dims; ++k) {
    EXPECT_NEAR(h.MarginalMean(k), mean[k], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EdgeHistogramPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(10, 200),
                       ::testing::Values(1, 8, 64)));

}  // namespace
}  // namespace xsketch::hist
