#include "util/percentiles.h"

#include <gtest/gtest.h>

#include <vector>

namespace xsketch::util {
namespace {

TEST(PercentilesTest, EmptySampleYieldsZero) {
  std::vector<double> xs;
  EXPECT_EQ(PercentileSorted(xs, 0.5), 0.0);
  EXPECT_EQ(Percentile(xs, 0.95), 0.0);
}

TEST(PercentilesTest, SingleElement) {
  std::vector<double> xs = {7.0};
  EXPECT_EQ(Percentile(xs, 0.0), 7.0);
  EXPECT_EQ(Percentile(xs, 0.5), 7.0);
  EXPECT_EQ(Percentile(xs, 1.0), 7.0);
}

TEST(PercentilesTest, NearestRankOnSortedInput) {
  // Ranks: p * (n - 1), rounded to nearest. n = 5 -> p50 is index 2,
  // p95 is round(3.8) = index 4.
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(PercentileSorted(sorted, 0.0), 1.0);
  EXPECT_EQ(PercentileSorted(sorted, 0.50), 3.0);
  EXPECT_EQ(PercentileSorted(sorted, 0.95), 5.0);
  EXPECT_EQ(PercentileSorted(sorted, 1.0), 5.0);
}

TEST(PercentilesTest, SortsUnsortedInPlace) {
  std::vector<double> xs = {5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_EQ(Percentile(xs, 0.5), 3.0);
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
}

TEST(PercentilesTest, MatchesLegacyConvention) {
  // The exact formula previously duplicated in core/builder.cc and
  // service/estimation_service.cc: index = llround(p * (n - 1)). Pin a
  // case where rounding matters: n = 4, p = 0.5 -> 1.5 rounds to 2.
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_EQ(Percentile(xs, 0.5), 30.0);
}

}  // namespace
}  // namespace xsketch::util
