// Fidelity tests against the paper's worked examples, beyond the ones
// embedded in the module tests:
//  * Example 3.1 — the edge-distribution table f_P(C_K, C_Y, C_P, C_N)
//  * the twig query of Example 3.1 and its closed-form selectivity
//  * TREEPARSE bookkeeping (E_i / U_i / D_i) implied by §4's example

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/estimator.h"
#include "core/twig_xsketch.h"
#include "data/figures.h"
#include "query/evaluator.h"
#include "query/xpath_parser.h"

namespace xsketch::core {
namespace {

SynNodeId NodeByTag(const Synopsis& syn, const xml::Document& doc,
                    const char* tag) {
  const auto& nodes = syn.NodesWithTag(doc.LookupTag(tag));
  EXPECT_EQ(nodes.size(), 1u) << tag;
  return nodes[0];
}

class PaperExamples : public ::testing::Test {
 protected:
  PaperExamples() : doc_(data::MakeBibliography()) {}

  // Builds the Example-3.1 configuration: H_P(C_K, C_Y, C_P, C_N) — two
  // forward counts at P (keyword, year) and two backward counts over the
  // author's paper and name edges.
  TwigXSketch MakeExample31Sketch() {
    CoarsestOptions opts;
    opts.initial_buckets = 16;
    opts.max_initial_dims = 0;
    TwigXSketch sketch = TwigXSketch::Coarsest(doc_, opts);
    const Synopsis& syn = sketch.synopsis();
    SynNodeId a = NodeByTag(syn, doc_, "author");
    SynNodeId p = NodeByTag(syn, doc_, "paper");
    SynNodeId k = NodeByTag(syn, doc_, "keyword");
    SynNodeId y = NodeByTag(syn, doc_, "year");
    SynNodeId n = NodeByTag(syn, doc_, "name");
    EXPECT_TRUE(sketch.ExpandScope(p, CountRef{true, p, k}));
    EXPECT_TRUE(sketch.ExpandScope(p, CountRef{true, p, y}));
    EXPECT_TRUE(sketch.ExpandScope(p, CountRef{false, a, p}));
    EXPECT_TRUE(sketch.ExpandScope(p, CountRef{false, a, n}));
    return sketch;
  }

  xml::Document doc_;
};

TEST_F(PaperExamples, Example31DistributionTable) {
  // Example 3.1's table over our bibliography (|P| = 4):
  //   (C_K, C_Y, C_P, C_N) = (2,1,2,1) with fraction 0.25  (p4)
  //                          (1,1,2,1) with fraction 0.25  (p5)
  //                          (1,1,1,1) with fraction 0.50  (p8, p9)
  TwigXSketch sketch = MakeExample31Sketch();
  const Synopsis& syn = sketch.synopsis();
  SynNodeId p = NodeByTag(syn, doc_, "paper");
  const NodeSummary& s = sketch.summary(p);
  ASSERT_EQ(s.scope.size(), 4u);
  ASSERT_EQ(s.hist.bucket_count(), 3);  // exact: three distinct points

  // Locate the dims: 0 = C_K, 1 = C_Y, 2 = C_P, 3 = C_N (insertion order).
  double f_2121 = 0, f_1121 = 0, f_1111 = 0;
  for (const auto& b : s.hist.buckets()) {
    auto is = [&](double k, double y, double pp, double n) {
      return std::abs(b.mean[0] - k) < 1e-9 &&
             std::abs(b.mean[1] - y) < 1e-9 &&
             std::abs(b.mean[2] - pp) < 1e-9 &&
             std::abs(b.mean[3] - n) < 1e-9;
    };
    if (is(2, 1, 2, 1)) f_2121 = b.fraction;
    if (is(1, 1, 2, 1)) f_1121 = b.fraction;
    if (is(1, 1, 1, 1)) f_1111 = b.fraction;
  }
  EXPECT_DOUBLE_EQ(f_2121, 0.25);
  EXPECT_DOUBLE_EQ(f_1121, 0.25);
  EXPECT_DOUBLE_EQ(f_1111, 0.50);
}

TEST_F(PaperExamples, Example31TwigSelectivity) {
  // "for t0 in A, t1 in t0/N, t2 in t0/P/K": each element in fraction
  // f_P(c_k, c_y, c_p, c_n) generates c_k * c_n binding tuples, so
  // s = sum |P| * f_P * c_k * c_n = 4*(0.25*2 + 0.25*1 + 0.5*1) = 5.
  auto twig = query::ParseForClause(
      "for t0 in //author, t1 in t0/name, t2 in t0/paper/keyword",
      doc_.tags());
  ASSERT_TRUE(twig.ok());
  EXPECT_EQ(query::ExactEvaluator(doc_).Selectivity(twig.value()), 5u);

  // The estimator reaches the same value through the A-side expansion
  // (H_A covers name/paper; the paper-side K count conditions on C_P).
  TwigXSketch sketch = MakeExample31Sketch();
  const Synopsis& syn = sketch.synopsis();
  SynNodeId a = NodeByTag(syn, doc_, "author");
  SynNodeId p = NodeByTag(syn, doc_, "paper");
  SynNodeId n = NodeByTag(syn, doc_, "name");
  ASSERT_TRUE(sketch.ExpandScope(a, CountRef{true, a, p}));
  ASSERT_TRUE(sketch.ExpandScope(a, CountRef{true, a, n}));
  Estimator est(sketch);
  EXPECT_NEAR(est.Estimate(twig.value()), 5.0, 1e-6);
}

TEST_F(PaperExamples, Example21BindingTuples) {
  // Example 2.1: authors with name, paper[year>2000], its title and
  // keyword. The paper's figure-1 document yields 3 tuples; our
  // reconstruction (Example-3.1-consistent) yields 2 — one through p5,
  // one through p8.
  auto twig = query::ParseForClause(
      "for t0 in //author, t1 in t0/name, t2 in t0/paper[year>2000], "
      "t3 in t2/title, t4 in t2/keyword",
      doc_.tags());
  ASSERT_TRUE(twig.ok());
  EXPECT_EQ(query::ExactEvaluator(doc_).Selectivity(twig.value()), 2u);
}

TEST_F(PaperExamples, Section31StabilityClaims) {
  // §3.1: "edge A->P is both backward and forward stable since all papers
  // have an author parent, and all authors have at least one paper child.
  // As a result, |P| = 4 is an accurate selectivity estimate for path
  // expression A/P, while |A| = 3 is an accurate estimate for A[/P]."
  TwigXSketch sketch = TwigXSketch::Coarsest(doc_);
  const Synopsis& syn = sketch.synopsis();
  SynNodeId a = NodeByTag(syn, doc_, "author");
  SynNodeId p = NodeByTag(syn, doc_, "paper");
  const SynEdge* edge = syn.FindEdge(a, p);
  ASSERT_NE(edge, nullptr);
  EXPECT_TRUE(edge->backward_stable);
  EXPECT_TRUE(edge->forward_stable);

  Estimator est(sketch);
  auto ap = query::ParsePath("//author/paper", doc_.tags());
  auto a_with_p = query::ParsePath("//author[paper]", doc_.tags());
  ASSERT_TRUE(ap.ok());
  ASSERT_TRUE(a_with_p.ok());
  EXPECT_DOUBLE_EQ(est.Estimate(ap.value()), 4.0);
  EXPECT_DOUBLE_EQ(est.Estimate(a_with_p.value()), 3.0);
}

TEST_F(PaperExamples, MaximalExpansionSumsDisjointPaths) {
  // §4: the selectivity of a twig with '//' equals the sum over its
  // maximal (concrete-path) forms. //keyword expands to the single
  // author/paper/keyword path here; deeper checks use a two-route doc.
  xml::Document doc = [] {
    xml::Document d;
    xml::NodeId r = d.AddNode(xml::kInvalidNode, "r");
    xml::NodeId x = d.AddNode(r, "x");
    d.AddNode(x, "k");
    d.AddNode(x, "k");
    xml::NodeId y = d.AddNode(r, "y");
    d.AddNode(y, "k");
    d.Seal();
    return d;
  }();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  Estimator est(sketch);
  auto all = query::ParsePath("//k", doc.tags());
  auto via_x = query::ParsePath("/r/x/k", doc.tags());
  auto via_y = query::ParsePath("/r/y/k", doc.tags());
  ASSERT_TRUE(all.ok());
  EXPECT_DOUBLE_EQ(est.Estimate(all.value()),
                   est.Estimate(via_x.value()) +
                       est.Estimate(via_y.value()));
  EXPECT_DOUBLE_EQ(est.Estimate(all.value()), 3.0);
}

}  // namespace
}  // namespace xsketch::core
