// Differential oracle harness (see src/testing/differential.h): seeded
// random (document, query) pairs checked against the exact evaluator and
// the pipeline's own consistency invariants.
//
// Reproduction workflow: every stream derives from one base seed
// (default fixed; override with XSKETCH_SEED=<n>). A failure prints the
// exact per-document seed plus a minimized single-pair repro command
// driven by XSKETCH_DIFF_SHAPE / XSKETCH_DIFF_DOC_SEED /
// XSKETCH_DIFF_QUERY, which reruns just that pair via SinglePairRepro.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "core/twig_xsketch.h"
#include "query/evaluator.h"
#include "testing/differential.h"
#include "testing/doc_generator.h"
#include "testing/query_generator.h"
#include "testing/seed.h"
#include "util/random.h"
#include "xml/writer.h"

namespace xsketch {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

// --- Generator self-checks ------------------------------------------------

TEST(DocGenerator, DeterministicPerSeed) {
  for (xsketch::testing::DocShape shape : xsketch::testing::kAllDocShapes) {
    const uint64_t seed = xsketch::testing::Derive(
        xsketch::testing::BaseSeed(), static_cast<uint64_t>(shape) + 77);
    xml::Document a = xsketch::testing::GenerateRandomDocument(
        xsketch::testing::ShapePreset(shape, seed));
    xml::Document b = xsketch::testing::GenerateRandomDocument(
        xsketch::testing::ShapePreset(shape, seed));
    EXPECT_EQ(xml::WriteDocument(a), xml::WriteDocument(b))
        << xsketch::testing::DocShapeName(shape);
  }
}

TEST(DocGenerator, SeedsActuallyVaryTheDocument) {
  const uint64_t base = xsketch::testing::BaseSeed();
  std::set<std::string> seen;
  for (uint64_t i = 0; i < 4; ++i) {
    seen.insert(xml::WriteDocument(xsketch::testing::GenerateRandomDocument(
        xsketch::testing::ShapePreset(xsketch::testing::DocShape::kSkewed,
                                      xsketch::testing::Derive(base, i)))));
  }
  EXPECT_GE(seen.size(), 3u) << "seeds collapse to identical documents";
}

TEST(DocGenerator, RecursiveShapeRepeatsTagsAlongPaths) {
  xml::Document doc = xsketch::testing::GenerateRandomDocument(
      xsketch::testing::ShapePreset(xsketch::testing::DocShape::kRecursive,
                                    xsketch::testing::BaseSeed()));
  bool repeated = false;
  for (xml::NodeId e = 0; e < doc.size() && !repeated; ++e) {
    for (xml::NodeId a = doc.parent(e);
         a != xml::kInvalidNode && !repeated; a = doc.parent(a)) {
      repeated = doc.tag(a) == doc.tag(e);
    }
  }
  EXPECT_TRUE(repeated)
      << "recursive preset produced no ancestor tag repetition";
}

TEST(DocGenerator, StableShapeIsPerfectlyStable) {
  // Every element of a tag must have an identical (tag -> count) child
  // signature — the property the stable-exactness oracle relies on.
  xml::Document doc = xsketch::testing::GenerateRandomDocument(
      xsketch::testing::ShapePreset(xsketch::testing::DocShape::kStable,
                                    xsketch::testing::BaseSeed()));
  std::vector<std::string> signature_of_tag(doc.tag_count());
  std::vector<bool> seen(doc.tag_count(), false);
  for (xml::NodeId e = 0; e < doc.size(); ++e) {
    std::string sig;
    std::map<xml::TagId, int> counts;
    doc.ForEachChild(e, [&](xml::NodeId c) { ++counts[doc.tag(c)]; });
    for (const auto& [tag, n] : counts) {
      sig += std::to_string(tag) + ":" + std::to_string(n) + ",";
    }
    sig += doc.has_value(e) ? "v" : "-";
    if (!seen[doc.tag(e)]) {
      seen[doc.tag(e)] = true;
      signature_of_tag[doc.tag(e)] = sig;
    } else {
      ASSERT_EQ(signature_of_tag[doc.tag(e)], sig)
          << "tag " << doc.tag_name(e) << " is not stable";
    }
  }
}

TEST(QueryGenerator, AlwaysValidAndShapesVary) {
  xml::Document doc = xsketch::testing::GenerateRandomDocument(
      xsketch::testing::ShapePreset(xsketch::testing::DocShape::kUniform,
                                    xsketch::testing::BaseSeed()));
  util::Rng rng(xsketch::testing::Derive(xsketch::testing::BaseSeed(), 5));
  xsketch::testing::QueryGenOptions opts;
  opts.empty_range_prob = 0.2;
  int with_descendant = 0, with_branch = 0, with_pred = 0, empty_range = 0;
  for (int i = 0; i < 200; ++i) {
    query::TwigQuery q =
        xsketch::testing::GenerateRandomTwig(doc, opts, rng);
    ASSERT_TRUE(q.Validate().ok()) << q.ToString(doc.tags());
    if (q.has_descendant_axis()) ++with_descendant;
    if (q.has_branching()) ++with_branch;
    if (q.value_predicate_count() > 0) ++with_pred;
    for (int t = 0; t < q.size(); ++t) {
      const auto& pred = q.node(t).pred;
      if (pred.has_value() && pred->lo > pred->hi) ++empty_range;
    }
  }
  // The generator must actually exercise every feature axis.
  EXPECT_GT(with_descendant, 20);
  EXPECT_GT(with_branch, 20);
  EXPECT_GT(with_pred, 20);
  EXPECT_GT(empty_range, 0);
}

// --- The differential sweep ----------------------------------------------
//
// >= 200 seeded (doc, query) pairs across all five document shapes; every
// invariant must hold. Failure output includes the per-document seed and
// the single-pair repro command. Budget: < 60 s (typically a few seconds
// in RelWithDebInfo; XSKETCH_DIFF_DOCS / XSKETCH_DIFF_QUERIES shrink it
// for sanitizer runs).

TEST(Differential, SweepAllShapesAndInvariants) {
  xsketch::testing::DifferentialOptions opts;
  opts.seed = xsketch::testing::BaseSeed();
  opts.docs_per_shape = EnvInt("XSKETCH_DIFF_DOCS", 2);
  opts.queries_per_doc = EnvInt("XSKETCH_DIFF_QUERIES", 24);
  opts.batch_threads = 8;
  const xsketch::testing::DifferentialReport report =
      xsketch::testing::RunDifferential(opts);

  for (const auto& f : report.failures) {
    ADD_FAILURE() << f.Describe() << "\n  (base seed "
                  << xsketch::testing::BaseSeed() << "; full sweep: "
                  << xsketch::testing::ReproCommand(
                         xsketch::testing::BaseSeed(), "differential")
                  << ")";
  }
  SCOPED_TRACE(report.Summary());
  EXPECT_TRUE(report.ok()) << report.Summary();
  if (opts.docs_per_shape >= 2 && opts.queries_per_doc >= 20) {
    EXPECT_GE(report.pairs, 200) << report.Summary();
  }
  EXPECT_GE(report.docs, 3 * opts.docs_per_shape);
}

// Minimized repro: reruns exactly one (document, query) pair named by the
// environment (printed by every failure). Skipped in normal runs.
TEST(Differential, SinglePairRepro) {
  const char* shape_name = std::getenv("XSKETCH_DIFF_SHAPE");
  const char* doc_seed_env = std::getenv("XSKETCH_DIFF_DOC_SEED");
  if (shape_name == nullptr || doc_seed_env == nullptr) {
    GTEST_SKIP() << "set XSKETCH_DIFF_SHAPE + XSKETCH_DIFF_DOC_SEED "
                    "(+ XSKETCH_DIFF_QUERY) to rerun one pair";
  }
  xsketch::testing::DocShape shape = xsketch::testing::DocShape::kUniform;
  bool found = false;
  for (xsketch::testing::DocShape s : xsketch::testing::kAllDocShapes) {
    if (std::string(shape_name) == xsketch::testing::DocShapeName(s)) {
      shape = s;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "unknown XSKETCH_DIFF_SHAPE '" << shape_name << "'";
  const uint64_t doc_seed = std::strtoull(doc_seed_env, nullptr, 0);
  const int query = EnvInt("XSKETCH_DIFF_QUERY", -1);

  const xsketch::testing::DifferentialReport report =
      xsketch::testing::RunSinglePair(shape, doc_seed, query);
  for (const auto& f : report.failures) ADD_FAILURE() << f.Describe();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace xsketch
