// Golden tests for EstimateStats diagnostics: hand-built synopses where
// the exact mix of estimation mechanisms is known, pinning the
// covered (E_i) / uniformity (U_i) / conditioned (D_i) / value /
// existential / '//'-chain counters. These counts are part of the
// observability contract — dashboards and the explain renderer interpret
// them — so a change here must be a deliberate estimator change, not
// drift.

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/twig_xsketch.h"
#include "data/figures.h"
#include "query/xpath_parser.h"

namespace xsketch::core {
namespace {

EstimateStats StatsForPath(const TwigXSketch& sketch, const char* path) {
  auto q = query::ParsePath(path, sketch.doc().tags());
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return Estimator(sketch).EstimateWithStats(q.value());
}

TEST(EstimateStatsTest, BibliographyCoveredOnly) {
  // Coarsest bibliography synopsis: the paper->keyword edge is covered by
  // the keyword-count histogram (2 buckets read), nothing falls back to
  // uniformity and no conditioning happens.
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const EstimateStats s = StatsForPath(sketch, "//paper/keyword");
  EXPECT_DOUBLE_EQ(s.estimate, 5.0);
  EXPECT_EQ(s.covered_terms, 2);
  EXPECT_EQ(s.uniformity_terms, 0);
  EXPECT_EQ(s.conditioned_nodes, 0);
  EXPECT_EQ(s.value_fractions, 0);
  EXPECT_EQ(s.existential_terms, 0);
  EXPECT_EQ(s.descendant_chains, 0);
}

TEST(EstimateStatsTest, BibliographyMixedCoveredAndUniform) {
  // //author/paper/title: the author->paper step reads the 2-bucket paper
  // histogram (E), the paper->title step is uncovered at its node so the
  // bucket loop collapses to the unit point — one Forward Uniformity (U)
  // fallback per paper extent reached from each author bucket.
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const EstimateStats s = StatsForPath(sketch, "//author/paper/title");
  EXPECT_DOUBLE_EQ(s.estimate, 4.0);
  EXPECT_EQ(s.covered_terms, 2);
  EXPECT_EQ(s.uniformity_terms, 2);
  EXPECT_EQ(s.conditioned_nodes, 0);
  EXPECT_EQ(s.existential_terms, 0);
}

TEST(EstimateStatsTest, BibliographyBranchingPredicate) {
  // //paper[keyword]/title: the branch contributes one existential factor
  // per histogram bucket.
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const EstimateStats s = StatsForPath(sketch, "//paper[keyword]/title");
  EXPECT_DOUBLE_EQ(s.estimate, 4.0);
  EXPECT_EQ(s.covered_terms, 2);
  EXPECT_EQ(s.uniformity_terms, 2);
  EXPECT_EQ(s.existential_terms, 2);
  EXPECT_EQ(s.descendant_chains, 0);
}

TEST(EstimateStatsTest, BibliographyValueAndBranching) {
  // //paper[year>=2001]/keyword: value-predicate fractions apply at each
  // enumerated paper bucket alongside the existential year branch.
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const EstimateStats s =
      StatsForPath(sketch, "//paper[year>=2001]/keyword");
  EXPECT_DOUBLE_EQ(s.estimate, 2.5);
  EXPECT_EQ(s.covered_terms, 2);
  EXPECT_EQ(s.uniformity_terms, 2);
  EXPECT_EQ(s.value_fractions, 2);
  EXPECT_EQ(s.existential_terms, 2);
}

TEST(EstimateStatsTest, BibliographyDescendantExpansion) {
  // //bib//keyword: one '//' step expanded into a single maximal chain
  // (bib -> ... -> keyword); the chain's first step reads the histogram.
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const EstimateStats s = StatsForPath(sketch, "//bib//keyword");
  EXPECT_DOUBLE_EQ(s.estimate, 5.0);
  EXPECT_EQ(s.descendant_chains, 1);
  EXPECT_EQ(s.covered_terms, 1);
  EXPECT_EQ(s.uniformity_terms, 0);
}

TEST(EstimateStatsTest, Figure4JointHistogramCounts) {
  // The paper's Figure 4 document with the 2-D (b, c) histogram: both
  // child steps of every enumerated bucket are covered — 4 E terms (2
  // buckets x 2 children), no uniformity fallbacks — and the estimate is
  // the exact 2000.
  xml::Document doc = data::MakeFigure4A();
  CoarsestOptions opts;
  opts.max_initial_dims = 2;
  TwigXSketch sketch = TwigXSketch::Coarsest(doc, opts);
  auto q = query::ParseForClause("for t0 in //a, t1 in t0/b, t2 in t0/c",
                                 doc.tags());
  ASSERT_TRUE(q.ok());
  const EstimateStats s = Estimator(sketch).EstimateWithStats(q.value());
  EXPECT_DOUBLE_EQ(s.estimate, 2000.0);
  EXPECT_EQ(s.covered_terms, 4);
  EXPECT_EQ(s.uniformity_terms, 0);
  EXPECT_EQ(s.conditioned_nodes, 0);
  EXPECT_EQ(s.value_fractions, 0);
  EXPECT_EQ(s.existential_terms, 0);
  EXPECT_EQ(s.descendant_chains, 0);
}

}  // namespace
}  // namespace xsketch::core
