// XSK3 storage and catalog tests: byte-layout pins, save/load round-trip
// bit-identity (mmap path included), exhaustive truncation and bit-flip
// sweeps over the on-disk image, header-patch rejection, the mmap-backed
// SketchCatalog (LRU budget, hot swap, generation pinning, stats), the
// frozen-only Session, plan-cache key injectivity, and the XSK2 file I/O
// hardening.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/frozen_io.h"
#include "core/serialize.h"
#include "core/xsk3_format.h"
#include "data/figures.h"
#include "data/xmark.h"
#include "query/workload.h"
#include "service/sketch_catalog.h"
#include "util/mmap_file.h"
#include "xsketch_api.h"

namespace xsketch {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::vector<query::TwigQuery> SomeQueries(const xml::Document& doc, int n) {
  query::WorkloadOptions wopts;
  wopts.seed = 7;
  wopts.num_queries = n;
  wopts.value_pred_fraction = 0.3;
  const query::Workload wl = query::GeneratePositiveWorkload(doc, wopts);
  std::vector<query::TwigQuery> queries;
  for (const auto& wq : wl.queries) queries.push_back(wq.twig);
  return queries;
}

// Re-stamps the header checksum after a test patches header fields, so
// the loader's semantic validation (not the CRC) is what rejects the
// patched image.
void FixHeaderCrc(std::string* image) {
  const size_t meta_bytes = sizeof(core::Xsk3Header) +
                            core::kXsk3SectionCount * sizeof(core::Xsk3Section);
  ASSERT_GE(image->size(), meta_bytes);
  const size_t crc_off = offsetof(core::Xsk3Header, header_crc);
  std::memset(image->data() + crc_off, 0, sizeof(uint32_t));
  const uint32_t crc = core::Crc32(image->data(), meta_bytes);
  std::memcpy(image->data() + crc_off, &crc, sizeof(crc));
}

// --- layout pins ---------------------------------------------------------

TEST(Xsk3FormatTest, LayoutPins) {
  static_assert(sizeof(core::Xsk3Header) == 64);
  static_assert(sizeof(core::Xsk3Section) == 32);
  static_assert(core::kXsk3SectionCount == 34);
  static_assert(core::Xsk3Align(0) == 0);
  static_assert(core::Xsk3Align(1) == 64);
  static_assert(core::Xsk3Align(64) == 64);
  static_assert(core::Xsk3Align(65) == 128);

  xml::Document doc = data::MakeBibliography();
  core::TwigXSketch sketch = core::TwigXSketch::Coarsest(doc);
  const core::FrozenSynopsis frozen(sketch);
  auto image = core::SaveFrozen(frozen);
  ASSERT_TRUE(image.ok());
  const std::string& bytes = image.value();
  ASSERT_GE(bytes.size(), sizeof(core::Xsk3Header));
  EXPECT_EQ(bytes.compare(0, 4, "XSK3"), 0);
  core::Xsk3Header hdr;
  std::memcpy(&hdr, bytes.data(), sizeof(hdr));
  EXPECT_EQ(hdr.version, core::kXsk3Version);
  EXPECT_EQ(hdr.file_size, bytes.size());
  EXPECT_EQ(hdr.section_count, core::kXsk3SectionCount);
  EXPECT_EQ(hdr.node_count, frozen.node_count());

  // Every section starts on a 64-byte boundary.
  for (uint32_t i = 0; i < core::kXsk3SectionCount; ++i) {
    core::Xsk3Section sec;
    std::memcpy(&sec, bytes.data() + sizeof(hdr) + i * sizeof(sec),
                sizeof(sec));
    EXPECT_EQ(sec.id, i + 1);
    EXPECT_EQ(sec.offset % core::kXsk3Alignment, 0u);
  }

  // Serialization is deterministic: same synopsis, same bytes.
  auto again = core::SaveFrozen(frozen);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(bytes, again.value());
}

// --- round-trip bit-identity --------------------------------------------

void ExpectBitIdenticalPrograms(const core::TwigXSketch& sketch,
                                const xml::Document& doc) {
  const auto frozen = std::make_shared<const core::FrozenSynopsis>(sketch);
  auto image = core::SaveFrozen(*frozen);
  ASSERT_TRUE(image.ok()) << image.status().ToString();

  // Through the mmap path: write to disk, map, load.
  const std::string path = TempPath("roundtrip.xsk3");
  ASSERT_TRUE(core::SaveFrozenToFile(*frozen, path).ok());
  core::FrozenLoadOptions opts;
  opts.verify_checksums = true;
  auto loaded = core::LoadFrozenFile(path, opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value()->node_count(), frozen->node_count());
  EXPECT_EQ(loaded.value()->doc_size(), frozen->doc_size());

  const core::TwigCompiler heap_compiler(frozen);
  const core::TwigCompiler mmap_compiler(loaded.value());
  const auto queries = SomeQueries(doc, 40);
  ASSERT_FALSE(queries.empty());
  for (const auto& q : queries) {
    auto hp = heap_compiler.Compile(q);
    auto mp = mmap_compiler.Compile(q);
    ASSERT_TRUE(hp.ok() && mp.ok());
    const core::EstimateStats hs = hp.value()->ExecuteWithStats();
    const core::EstimateStats ms = mp.value()->ExecuteWithStats();
    EXPECT_TRUE(BitEqual(hs.estimate, ms.estimate));
    EXPECT_EQ(hs.covered_terms, ms.covered_terms);
    EXPECT_EQ(hs.uniformity_terms, ms.uniformity_terms);
    EXPECT_EQ(hs.conditioned_nodes, ms.conditioned_nodes);
    EXPECT_EQ(hs.value_fractions, ms.value_fractions);
  }
}

TEST(Xsk3RoundTripTest, CoarsestXMark) {
  xml::Document doc = data::GenerateXMark({.seed = 42, .scale = 0.05});
  ExpectBitIdenticalPrograms(core::TwigXSketch::Coarsest(doc), doc);
}

TEST(Xsk3RoundTripTest, RefinedWithBackwardAndValueCorrelation) {
  xml::Document doc = data::GenerateXMark({.seed = 42, .scale = 0.05});
  core::BuildOptions bopts;
  bopts.budget_bytes = 16 * 1024;
  bopts.allow_backward_counts = true;
  bopts.allow_value_correlation = true;
  ExpectBitIdenticalPrograms(core::XBuild(doc, bopts).Build(), doc);
}

TEST(Xsk3RoundTripTest, EmptyHistogramSketch) {
  // max_initial_dims = 0: a pure graph synopsis, every histogram empty —
  // the hist-empty code paths must survive the format round trip.
  xml::Document doc = data::MakeBibliography();
  core::CoarsestOptions copts;
  copts.max_initial_dims = 0;
  ExpectBitIdenticalPrograms(core::TwigXSketch::Coarsest(doc, copts), doc);
}

TEST(Xsk3RoundTripTest, MaxBucketSketch) {
  // An oversized bucket budget: histograms as wide as the data allows.
  xml::Document doc = data::GenerateXMark({.seed = 3, .scale = 0.02});
  core::CoarsestOptions copts;
  copts.initial_buckets = 4096;
  copts.initial_value_buckets = 4096;
  ExpectBitIdenticalPrograms(core::TwigXSketch::Coarsest(doc, copts), doc);
}

// --- frozen-only Session -------------------------------------------------

TEST(Xsk3SessionTest, OpenMappedMatchesHeapSession) {
  xml::Document doc = data::GenerateXMark({.seed = 42, .scale = 0.05});
  core::TwigXSketch sketch = core::TwigXSketch::Coarsest(doc);
  const core::FrozenSynopsis frozen(sketch);
  const std::string path = TempPath("session.xsk3");
  ASSERT_TRUE(core::SaveFrozenToFile(frozen, path).ok());

  auto heap = api::Session::Open(core::TwigXSketch(sketch));
  auto mapped = api::Session::OpenMapped(path);
  ASSERT_TRUE(heap.ok());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(heap.value().has_sketch());
  EXPECT_FALSE(mapped.value().has_sketch());

  const auto queries = SomeQueries(doc, 24);
  for (const auto& q : queries) {
    auto he = heap.value().Execute(q);
    auto me = mapped.value().Execute(q);
    ASSERT_TRUE(he.ok() && me.ok());
    EXPECT_TRUE(BitEqual(he.value().estimate, me.value().estimate));
  }
  // Batch path too (exercises EstimateBatch without an interpreter).
  service::BatchStats stats;
  const auto hb = heap.value().ExecuteBatch(queries);
  const auto mb = mapped.value().ExecuteBatch(queries, &stats);
  ASSERT_EQ(hb.size(), mb.size());
  for (size_t i = 0; i < hb.size(); ++i) {
    ASSERT_TRUE(hb[i].ok() && mb[i].ok());
    EXPECT_TRUE(BitEqual(hb[i].value().estimate, mb[i].value().estimate));
  }
  EXPECT_EQ(stats.queries, queries.size());

  // Path-string Prepare works from the frozen tag table.
  auto pq = mapped.value().Prepare("//item");
  EXPECT_TRUE(pq.ok()) << pq.status().ToString();

  // Explain needs the interpreter.
  obs::ExplainTrace trace;
  auto ex = mapped.value().Explain(queries.front(), &trace);
  EXPECT_FALSE(ex.ok());

  // A PreparedQuery pins the mapping: drop the session, keep executing.
  auto pinned = mapped.value().Prepare(queries.front());
  ASSERT_TRUE(pinned.ok());
  mapped = util::Status::InvalidArgument("released");
  const double after = pinned.value().Execute();
  EXPECT_TRUE(std::isfinite(after));
}

TEST(Xsk3SessionTest, FrozenServiceRejectsAuditAndInterpreter) {
  xml::Document doc = data::MakeBibliography();
  core::TwigXSketch sketch = core::TwigXSketch::Coarsest(doc);
  const auto frozen = std::make_shared<const core::FrozenSynopsis>(sketch);

  service::ServiceOptions audit;
  audit.audit_fraction = 0.5;
  EXPECT_FALSE(service::EstimationService::Create(frozen, audit).ok());

  service::ServiceOptions interp;
  interp.use_compiled = false;
  EXPECT_FALSE(service::EstimationService::Create(frozen, interp).ok());

  EXPECT_TRUE(service::EstimationService::Create(frozen, {}).ok());
}

// --- hostile-input sweeps ------------------------------------------------

std::string SmallImage() {
  xml::Document doc = data::MakeBibliography();
  core::CoarsestOptions copts;
  copts.initial_buckets = 2;
  copts.initial_value_buckets = 2;
  core::TwigXSketch sketch = core::TwigXSketch::Coarsest(doc, copts);
  const core::FrozenSynopsis frozen(sketch);
  auto image = core::SaveFrozen(frozen);
  EXPECT_TRUE(image.ok());
  return image.value();
}

TEST(Xsk3HardeningTest, TruncationAnywhereIsAnError) {
  const std::string image = SmallImage();
  ASSERT_FALSE(image.empty());
  // Every prefix — including prefixes that end exactly on a section
  // boundary, and the empty file — must be rejected, never crash, never
  // "succeed with fewer sections".
  for (size_t len = 0; len < image.size(); ++len) {
    auto r = core::LoadFrozenFromBytes(std::string_view(image).substr(0, len));
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
  }
  // Trailing garbage is equally fatal.
  auto extended = core::LoadFrozenFromBytes(image + std::string(1, '\0'));
  EXPECT_FALSE(extended.ok());
  // The untruncated image loads.
  EXPECT_TRUE(core::LoadFrozenFromBytes(image).ok());
}

TEST(Xsk3HardeningTest, BitFlipSweep) {
  const std::string image = SmallImage();
  // Reference estimate for the semantic-equivalence arm below.
  auto ref = core::LoadFrozenFromBytes(image);
  ASSERT_TRUE(ref.ok());
  const core::TwigCompiler ref_compiler(ref.value());
  query::TwigQuery probe;
  probe.AddNode(-1, query::Axis::kDescendant, 0);
  auto ref_plan = ref_compiler.Compile(probe);
  ASSERT_TRUE(ref_plan.ok());
  const double ref_estimate = ref_plan.value()->Execute();

  core::FrozenLoadOptions checked;
  checked.verify_checksums = true;
  std::string mutated = image;
  size_t accepted = 0;
  for (size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      mutated[byte] = static_cast<char>(image[byte] ^ (1 << bit));
      // With checksums on, a flip may only survive in inter-section
      // alignment padding (not covered by any CRC) — and padding never
      // feeds the arithmetic, so a surviving load must be semantically
      // identical. Everything else must be rejected. Either way: no
      // crash, no OOB (ASan/UBSan builds make that assertion real).
      auto r = core::LoadFrozenFromBytes(mutated, checked);
      if (r.ok()) {
        ++accepted;
        const core::TwigCompiler c(r.value());
        auto plan = c.Compile(probe);
        ASSERT_TRUE(plan.ok());
        EXPECT_TRUE(BitEqual(plan.value()->Execute(), ref_estimate))
            << "padding flip at byte " << byte << " changed an estimate";
      }
      // Without checksum verification the loader still must not crash;
      // structural validation decides acceptance.
      (void)core::LoadFrozenFromBytes(mutated);
    }
    mutated[byte] = image[byte];
  }
  // Exactly the inter-section alignment padding escapes CRC coverage;
  // every header, table, and payload byte is covered, so the accepted
  // count must equal the padding bit count exactly.
  size_t covered = sizeof(core::Xsk3Header) +
                   core::kXsk3SectionCount * sizeof(core::Xsk3Section);
  for (uint32_t i = 0; i < core::kXsk3SectionCount; ++i) {
    core::Xsk3Section sec;
    std::memcpy(&sec,
                image.data() + sizeof(core::Xsk3Header) + i * sizeof(sec),
                sizeof(sec));
    covered += sec.bytes;
  }
  ASSERT_LE(covered, image.size());
  EXPECT_EQ(accepted, (image.size() - covered) * 8);
}

TEST(Xsk3HardeningTest, PatchedHeaderFieldsRejected) {
  const std::string image = SmallImage();

  {  // node_count = 0: a sketch always has a root.
    std::string patched = image;
    const uint32_t zero = 0;
    std::memcpy(patched.data() + offsetof(core::Xsk3Header, node_count),
                &zero, sizeof(zero));
    FixHeaderCrc(&patched);
    auto r = core::LoadFrozenFromBytes(patched);
    EXPECT_FALSE(r.ok());
  }
  {  // node_count inflated: every fixed-count section goes inconsistent.
    std::string patched = image;
    core::Xsk3Header hdr;
    std::memcpy(&hdr, patched.data(), sizeof(hdr));
    const uint32_t inflated = hdr.node_count + 1;
    std::memcpy(patched.data() + offsetof(core::Xsk3Header, node_count),
                &inflated, sizeof(inflated));
    FixHeaderCrc(&patched);
    EXPECT_FALSE(core::LoadFrozenFromBytes(patched).ok());
  }
  {  // root out of range.
    std::string patched = image;
    const uint32_t huge = 0xFFFFFFFE;
    std::memcpy(patched.data() + offsetof(core::Xsk3Header, root_node),
                &huge, sizeof(huge));
    FixHeaderCrc(&patched);
    EXPECT_FALSE(core::LoadFrozenFromBytes(patched).ok());
  }
  {  // absurd depth (the '//'-expansion recursion bound).
    std::string patched = image;
    const uint32_t deep = 1u << 20;
    std::memcpy(patched.data() + offsetof(core::Xsk3Header, doc_max_depth),
                &deep, sizeof(deep));
    FixHeaderCrc(&patched);
    EXPECT_FALSE(core::LoadFrozenFromBytes(patched).ok());
  }
  {  // wrong magic / version.
    std::string patched = image;
    patched[0] = 'Y';
    EXPECT_FALSE(core::LoadFrozenFromBytes(patched).ok());
  }
}

// --- MappedFile ----------------------------------------------------------

TEST(MappedFileTest, ErrorsAndEmptyFiles) {
  EXPECT_FALSE(util::MappedFile::Open(TempPath("does_not_exist")).ok());
  // A directory is not mappable sketch storage.
  EXPECT_FALSE(util::MappedFile::Open(::testing::TempDir()).ok());
  // Zero-length file: mappable (no pages), but not a valid XSK3 image.
  const std::string path = TempPath("empty.bin");
  WriteFile(path, "");
  auto mapped = util::MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped.value()->size(), 0u);
  EXPECT_FALSE(core::LoadFrozen(mapped.value()).ok());
}

// --- SketchCatalog -------------------------------------------------------

std::string SaveSketchAs(const core::TwigXSketch& sketch,
                         const std::string& name) {
  const core::FrozenSynopsis frozen(sketch);
  const std::string path = TempPath(name);
  EXPECT_TRUE(core::SaveFrozenToFile(frozen, path).ok());
  return path;
}

TEST(SketchCatalogTest, PutGetRemoveAndStats) {
  xml::Document doc = data::MakeBibliography();
  const std::string path =
      SaveSketchAs(core::TwigXSketch::Coarsest(doc), "cat_a.xsk3");

  auto catalog = service::SketchCatalog::Create();
  ASSERT_TRUE(catalog.ok());
  auto put = catalog.value()->Put("bib", path);
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  EXPECT_EQ(put.value().generation(), 1u);
  EXPECT_GT(put.value().size_bytes(), 0u);

  auto get = catalog.value()->Get("bib");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get.value().generation(), 1u);
  EXPECT_FALSE(catalog.value()->Get("nope").ok());

  auto plan = get.value().Prepare(std::string("//book"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GE(plan.value()->Execute(), 0.0);

  auto s = catalog.value()->stats();
  EXPECT_EQ(s.sketches, 1u);
  EXPECT_EQ(s.loads, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.resident_bytes, put.value().size_bytes());

  EXPECT_TRUE(catalog.value()->Remove("bib"));
  EXPECT_FALSE(catalog.value()->Remove("bib"));
  EXPECT_EQ(catalog.value()->stats().sketches, 0u);
  EXPECT_EQ(catalog.value()->stats().resident_bytes, 0u);

  // Load failure leaves the catalog unchanged and is counted.
  EXPECT_FALSE(catalog.value()->Put("bad", TempPath("missing.xsk3")).ok());
  EXPECT_EQ(catalog.value()->stats().load_failures, 1u);
}

TEST(SketchCatalogTest, HotSwapPinsOldGeneration) {
  xml::Document doc = data::MakeBibliography();
  core::CoarsestOptions small;
  small.initial_buckets = 2;
  const std::string v1 =
      SaveSketchAs(core::TwigXSketch::Coarsest(doc, small), "swap_v1.xsk3");
  const std::string v2 =
      SaveSketchAs(core::TwigXSketch::Coarsest(doc), "swap_v2.xsk3");

  auto catalog = service::SketchCatalog::Create();
  ASSERT_TRUE(catalog.ok());
  auto h1 = catalog.value()->Put("doc", v1);
  ASSERT_TRUE(h1.ok());
  auto plan1 = h1.value().Prepare(std::string("//book"));
  ASSERT_TRUE(plan1.ok());
  const double before = plan1.value()->Execute();

  // Replace the file contents on disk, then hot-swap.
  auto h2 = catalog.value()->Put("doc", v2);
  ASSERT_TRUE(h2.ok());
  EXPECT_GT(h2.value().generation(), h1.value().generation());
  EXPECT_EQ(catalog.value()->stats().swaps, 1u);
  EXPECT_EQ(catalog.value()->stats().sketches, 1u);

  // The old handle (and its compiled program) still serve the old
  // snapshot, bit for bit.
  EXPECT_TRUE(BitEqual(plan1.value()->Execute(), before));
  auto plan1b = h1.value().Prepare(std::string("//book"));
  ASSERT_TRUE(plan1b.ok());
  EXPECT_TRUE(BitEqual(plan1b.value()->Execute(), before));

  // New lookups see the new generation.
  auto current = catalog.value()->Get("doc");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current.value().generation(), h2.value().generation());
}

TEST(SketchCatalogTest, ByteBudgetEvictsLru) {
  xml::Document bib = data::MakeBibliography();
  xml::Document xmark = data::GenerateXMark({.seed = 1, .scale = 0.02});
  const std::string a =
      SaveSketchAs(core::TwigXSketch::Coarsest(bib), "lru_a.xsk3");
  const std::string b =
      SaveSketchAs(core::TwigXSketch::Coarsest(xmark), "lru_b.xsk3");

  // Budget fits either sketch alone but not both.
  auto probe = core::LoadFrozenFile(a);
  ASSERT_TRUE(probe.ok());
  auto probe_b = core::LoadFrozenFile(b);
  ASSERT_TRUE(probe_b.ok());
  service::CatalogOptions copts;
  copts.byte_budget =
      std::max(probe.value()->SizeBytes(), probe_b.value()->SizeBytes()) + 64;

  auto catalog = service::SketchCatalog::Create(copts);
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog.value()->Put("a", a).ok());
  auto hb = catalog.value()->Put("b", b);
  ASSERT_TRUE(hb.ok());

  // "a" (least recently used) was evicted to make room.
  auto s = catalog.value()->stats();
  EXPECT_EQ(s.sketches, 1u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_LE(s.resident_bytes, copts.byte_budget);
  EXPECT_FALSE(catalog.value()->Get("a").ok());
  EXPECT_TRUE(catalog.value()->Get("b").ok());

  // An over-budget single sketch still installs (never self-evicts).
  service::CatalogOptions tiny;
  tiny.byte_budget = 1;
  auto tiny_catalog = service::SketchCatalog::Create(tiny);
  ASSERT_TRUE(tiny_catalog.ok());
  EXPECT_TRUE(tiny_catalog.value()->Put("a", a).ok());
  EXPECT_EQ(tiny_catalog.value()->stats().sketches, 1u);
}

// --- plan-cache key injectivity (regression, satellite) ------------------

TEST(PlanCacheKeyTest, DistinctTwigsNeverShareAnEntry) {
  xml::Document doc = data::GenerateXMark({.seed = 42, .scale = 0.05});
  auto session = api::Session::Open(core::TwigXSketch::Coarsest(doc));
  ASSERT_TRUE(session.ok());

  // Adversarial pairs: shapes whose un-delimited concatenations could
  // alias if the encoding were not self-delimiting (a one-node twig with
  // a value predicate vs. two plain nodes; same tags, different
  // structure). With the length-prefixed encoding each must get its own
  // plan-cache entry.
  std::vector<query::TwigQuery> twigs;
  {
    query::TwigQuery t;
    t.AddNode(-1, query::Axis::kChild, 0, false,
              query::ValuePredicate{.lo = 0x0101010101010101, .hi = 42});
    twigs.push_back(t);
  }
  {
    query::TwigQuery t;
    const int root = t.AddNode(-1, query::Axis::kChild, 0);
    t.AddNode(root, query::Axis::kChild, 1);
    twigs.push_back(t);
  }
  {
    query::TwigQuery t;  // same two tags, descendant axis
    const int root = t.AddNode(-1, query::Axis::kChild, 0);
    t.AddNode(root, query::Axis::kDescendant, 1);
    twigs.push_back(t);
  }
  {
    query::TwigQuery t;  // same shape, existential child
    const int root = t.AddNode(-1, query::Axis::kChild, 0);
    t.AddNode(root, query::Axis::kChild, 1, /*existential=*/true);
    twigs.push_back(t);
  }

  for (const auto& t : twigs) {
    auto p = session.value().Prepare(t);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
  }
  const auto counters = session.value().service().plan_cache_counters();
  EXPECT_EQ(counters.size, twigs.size());  // one entry per distinct twig
  EXPECT_EQ(counters.hits, 0u);

  // Re-preparing hits the right entries, one each.
  for (const auto& t : twigs) {
    ASSERT_TRUE(session.value().Prepare(t).ok());
  }
  EXPECT_EQ(session.value().service().plan_cache_counters().hits,
            twigs.size());
}

// --- XSK2 file I/O hardening (satellite) ---------------------------------

TEST(Xsk2FileTest, TruncatedFileOnDiskIsAnError) {
  xml::Document doc = data::MakeBibliography();
  core::TwigXSketch sketch = core::TwigXSketch::Coarsest(doc);
  const std::string bytes = core::SaveSketch(sketch);
  const std::string path = TempPath("trunc.xsk2");

  // Full file round-trips.
  WriteFile(path, bytes);
  EXPECT_TRUE(core::LoadSketchFromFile(path, doc).ok());

  // Any truncation on disk — including cutting exactly at the tail — is
  // a load error.
  for (const size_t keep :
       {bytes.size() - 1, bytes.size() / 2, bytes.size() / 4, size_t{8}}) {
    WriteFile(path, bytes.substr(0, keep));
    EXPECT_FALSE(core::LoadSketchFromFile(path, doc).ok())
        << "accepted a file truncated to " << keep << " bytes";
  }
}

TEST(Xsk2FileTest, UnreadablePathIsAnError) {
  xml::Document doc = data::MakeBibliography();
  // Reading a directory: open(2) succeeds on Linux but every read fails —
  // the loader must surface an I/O error, not parse an empty buffer.
  EXPECT_FALSE(core::LoadSketchFromFile(::testing::TempDir(), doc).ok());
  EXPECT_FALSE(core::LoadSketchFromFile(TempPath("nope.xsk2"), doc).ok());
}

}  // namespace
}  // namespace xsketch
