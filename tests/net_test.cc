// Protocol-layer unit tests: the JSON parser/writer, the incremental
// HTTP/1.1 parser with its input limits, and the XSKB wire codec —
// including the hostile inputs each must refuse (truncated frames,
// oversized bodies, absurd declared counts) since all three sit directly
// on untrusted network bytes.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "net/http.h"
#include "net/json.h"
#include "net/wire.h"

namespace xsketch::net {
namespace {

// --- JSON ----------------------------------------------------------------

TEST(JsonTest, ParsesScalarsArraysObjects) {
  auto v = ParseJson(R"({"doc":"bib","n":2.5,"flag":true,"nil":null,)"
                     R"("qs":["//a","//b"]})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const std::string* doc = v.value().FindString("doc");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(*doc, "bib");
  const double* n = v.value().FindNumber("n");
  ASSERT_NE(n, nullptr);
  EXPECT_DOUBLE_EQ(*n, 2.5);
  EXPECT_TRUE(v.value().Find("nil")->is_null());
  const JsonValue* qs = v.value().Find("qs");
  ASSERT_NE(qs, nullptr);
  ASSERT_EQ(qs->kind(), JsonValue::Kind::kArray);
  ASSERT_EQ(qs->array().size(), 2u);
  EXPECT_EQ(qs->array()[1].string_value(), "//b");
  // Wrong-type lookups answer nullptr, not garbage.
  EXPECT_EQ(v.value().FindString("n"), nullptr);
  EXPECT_EQ(v.value().FindNumber("doc"), nullptr);
  EXPECT_EQ(v.value().Find("absent"), nullptr);
}

TEST(JsonTest, ParsesStringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().string_value(), "a\"b\\c\n\tA");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // trailing garbage
  EXPECT_FALSE(ParseJson("{\"a\":1} x").ok());
}

TEST(JsonTest, DepthCapStopsNestingBombs) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  for (int i = 0; i < 64; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep, /*max_depth=*/32).ok());
  EXPECT_TRUE(ParseJson(deep, /*max_depth=*/128).ok());
}

TEST(JsonTest, WriterEscapesAndRoundTrips) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\nd\x01");
  auto back = ParseJson(out);
  ASSERT_TRUE(back.ok()) << out;
  EXPECT_EQ(back.value().string_value(), "a\"b\\c\nd\x01");

  out.clear();
  AppendJsonNumber(&out, 2700.0);
  auto num = ParseJson(out);
  ASSERT_TRUE(num.ok());
  EXPECT_DOUBLE_EQ(num.value().number_value(), 2700.0);

  out.clear();
  AppendJsonNumber(&out, std::nan(""));
  EXPECT_EQ(out, "null");  // JSON has no NaN
}

// --- HTTP ----------------------------------------------------------------

HttpLimits DefaultLimits() { return HttpLimits{}; }

TEST(HttpTest, ParsesRequestWithBodyAndPipelining) {
  const std::string one =
      "POST /estimate?x=a%20b HTTP/1.1\r\nHost: h\r\n"
      "Content-Length: 4\r\nX-Deadline-Ms: 50\r\n\r\nbody";
  const std::string two = "GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n";
  auto r = ParseHttpRequest(one + two, DefaultLimits());
  ASSERT_EQ(r.outcome, HttpParseOutcome::kRequest);
  EXPECT_EQ(r.consumed, one.size());  // pipelined bytes left for the next parse
  EXPECT_EQ(r.request.method, "POST");
  EXPECT_EQ(r.request.path, "/estimate");
  EXPECT_EQ(r.request.body, "body");
  ASSERT_NE(r.request.Header("x-deadline-ms"), nullptr);  // lowercased
  EXPECT_EQ(*r.request.Header("x-deadline-ms"), "50");
  auto param = r.request.QueryParam("x");
  ASSERT_TRUE(param.has_value());
  EXPECT_EQ(*param, "a b");  // percent-decoded
  EXPECT_TRUE(r.request.keep_alive);

  auto r2 = ParseHttpRequest(two, DefaultLimits());
  ASSERT_EQ(r2.outcome, HttpParseOutcome::kRequest);
  EXPECT_EQ(r2.request.method, "GET");
}

TEST(HttpTest, IncompleteInputNeedsMore) {
  const std::string full =
      "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789";
  for (size_t cut = 0; cut < full.size(); ++cut) {
    auto r = ParseHttpRequest(full.substr(0, cut), DefaultLimits());
    EXPECT_EQ(r.outcome, HttpParseOutcome::kNeedMore) << "cut at " << cut;
  }
  EXPECT_EQ(ParseHttpRequest(full, DefaultLimits()).outcome,
            HttpParseOutcome::kRequest);
}

TEST(HttpTest, ConnectionCloseDisablesKeepAlive) {
  auto r = ParseHttpRequest(
      "GET / HTTP/1.1\r\nConnection: close\r\n\r\n", DefaultLimits());
  ASSERT_EQ(r.outcome, HttpParseOutcome::kRequest);
  EXPECT_FALSE(r.request.keep_alive);
}

TEST(HttpTest, LimitsAndProtocolErrors) {
  HttpLimits limits;
  limits.max_header_bytes = 128;
  limits.max_body_bytes = 16;

  // Header section larger than the cap: 431 even before CRLFCRLF arrives.
  auto big_header = ParseHttpRequest(
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(256, 'a'), limits);
  EXPECT_EQ(big_header.outcome, HttpParseOutcome::kError);
  EXPECT_EQ(big_header.error_status, 431);

  auto big_body = ParseHttpRequest(
      "POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n", limits);
  EXPECT_EQ(big_body.outcome, HttpParseOutcome::kError);
  EXPECT_EQ(big_body.error_status, 413);

  auto chunked = ParseHttpRequest(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", limits);
  EXPECT_EQ(chunked.outcome, HttpParseOutcome::kError);
  EXPECT_EQ(chunked.error_status, 501);

  auto bad_version = ParseHttpRequest("GET / HTTP/2.0\r\n\r\n", limits);
  EXPECT_EQ(bad_version.outcome, HttpParseOutcome::kError);
  EXPECT_EQ(bad_version.error_status, 505);

  auto garbage = ParseHttpRequest("garbage\r\n\r\n", limits);
  EXPECT_EQ(garbage.outcome, HttpParseOutcome::kError);
  EXPECT_EQ(garbage.error_status, 400);

  auto bad_target = ParseHttpRequest("GET foo HTTP/1.1\r\n\r\n", limits);
  EXPECT_EQ(bad_target.outcome, HttpParseOutcome::kError);
  EXPECT_EQ(bad_target.error_status, 400);

  auto bad_length = ParseHttpRequest(
      "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", limits);
  EXPECT_EQ(bad_length.outcome, HttpParseOutcome::kError);
  EXPECT_EQ(bad_length.error_status, 400);
}

TEST(HttpTest, SerializeRoundTripsStatusAndHeaders) {
  const std::string resp = SerializeHttpResponse(
      429, "application/json", "{\"error\":\"overloaded\"}",
      /*keep_alive=*/true, {{"Retry-After", "1"}});
  EXPECT_EQ(resp.compare(0, 12, "HTTP/1.1 429"), 0) << resp;
  EXPECT_NE(resp.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 22\r\n"), std::string::npos);
  EXPECT_NE(resp.find("\r\n\r\n{\"error\":\"overloaded\"}"),
            std::string::npos);
}

// --- XSKB wire framing ---------------------------------------------------

TEST(WireTest, FrameRoundTripAndIncrementalParse) {
  std::string buf;
  AppendWireFrame(&buf, FrameType::kEstimate, "payload");
  // Every strict prefix needs more bytes.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    auto r = ParseWireFrame(std::string_view(buf).substr(0, cut), 1 << 20);
    EXPECT_EQ(r.outcome, WireParseOutcome::kNeedMore) << "cut at " << cut;
  }
  auto r = ParseWireFrame(buf, 1 << 20);
  ASSERT_EQ(r.outcome, WireParseOutcome::kFrame);
  EXPECT_EQ(r.consumed, buf.size());
  EXPECT_EQ(r.frame.type, static_cast<uint8_t>(FrameType::kEstimate));
  EXPECT_EQ(r.frame.payload, "payload");
}

TEST(WireTest, OversizedDeclaredFrameIsAnError) {
  std::string buf;
  buf.push_back(static_cast<char>(FrameType::kBatch));
  const uint32_t huge = 1u << 30;  // declared, never sent
  buf.append(reinterpret_cast<const char*>(&huge), 4);
  auto r = ParseWireFrame(buf, /*max_frame_bytes=*/1 << 20);
  EXPECT_EQ(r.outcome, WireParseOutcome::kError);
}

TEST(WireTest, EstimateRequestRoundTrip) {
  WireEstimateRequest req;
  req.deadline_ms = 250;
  req.doc = "movies";
  req.query = "//movie[year]/title";
  auto back = DecodeEstimateRequest(EncodeEstimateRequest(req));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().deadline_ms, 250u);
  EXPECT_EQ(back.value().doc, "movies");
  EXPECT_EQ(back.value().query, "//movie[year]/title");
}

TEST(WireTest, BatchRoundTripIncludingPerQueryErrors) {
  WireBatchRequest req;
  req.doc = "bib";
  req.queries = {"//a", "//b", "//c"};
  auto back = DecodeBatchRequest(EncodeBatchRequest(req));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().queries, req.queries);

  WireBatchResponse resp;
  resp.deadline_exceeded = true;
  resp.abandoned = 1;
  resp.results.resize(3);
  resp.results[0].ok = true;
  resp.results[0].estimate = 42.5;
  resp.results[1].ok = false;
  resp.results[1].code = NackCode::kBadRequest;
  resp.results[1].error = "parse error";
  resp.results[2].ok = false;
  resp.results[2].code = NackCode::kDeadline;
  auto rt = DecodeBatchResponse(EncodeBatchResponse(resp));
  ASSERT_TRUE(rt.ok());
  EXPECT_TRUE(rt.value().deadline_exceeded);
  EXPECT_EQ(rt.value().abandoned, 1u);
  ASSERT_EQ(rt.value().results.size(), 3u);
  EXPECT_DOUBLE_EQ(rt.value().results[0].estimate, 42.5);
  EXPECT_EQ(rt.value().results[1].code, NackCode::kBadRequest);
  EXPECT_EQ(rt.value().results[1].error, "parse error");
  EXPECT_EQ(rt.value().results[2].code, NackCode::kDeadline);
}

TEST(WireTest, NackAndEstimateOkRoundTrip) {
  auto nack = DecodeNack(EncodeNack(NackCode::kOverload, "queue full"));
  ASSERT_TRUE(nack.ok());
  EXPECT_EQ(nack.value().first, NackCode::kOverload);
  EXPECT_EQ(nack.value().second, "queue full");

  auto ok = DecodeEstimateOk(EncodeEstimateOk(2700.0));
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok.value(), 2700.0);
}

TEST(WireTest, TruncatedAndHostilePayloadsAreRejected) {
  WireEstimateRequest req;
  req.doc = "bib";
  req.query = "//book";
  const std::string good = EncodeEstimateRequest(req);
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(DecodeEstimateRequest(good.substr(0, cut)).ok())
        << "cut at " << cut;
  }

  // A batch declaring 2^31 queries with a 20-byte payload must be
  // rejected by arithmetic, not by attempting a 2^31-element reserve.
  std::string hostile;
  const uint32_t deadline = 0;
  hostile.append(reinterpret_cast<const char*>(&deadline), 4);
  const uint16_t doc_len = 1;
  hostile.append(reinterpret_cast<const char*>(&doc_len), 2);
  hostile.push_back('b');
  const uint32_t count = 1u << 31;
  hostile.append(reinterpret_cast<const char*>(&count), 4);
  EXPECT_FALSE(DecodeBatchRequest(hostile).ok());

  EXPECT_FALSE(DecodeEstimateOk("short").ok());
  EXPECT_FALSE(DecodeNack("").ok());
}

}  // namespace
}  // namespace xsketch::net
