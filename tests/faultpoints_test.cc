// Fault-injection layer tests: the FaultPoints registry itself
// (determinism, skip/budget/probability semantics, env-var arming), the
// instrumented IO sites (posix_io, mmap_file), and the headline
// robustness scenario — a catalog load failure injected mid-hot-swap
// must leave the old generation serving, count the failure in the
// catalog metrics, and keep in-flight prepared programs valid.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/frozen.h"
#include "core/frozen_io.h"
#include "core/serialize.h"
#include "core/twig_xsketch.h"
#include "data/figures.h"
#include "obs/metrics.h"
#include "service/sketch_catalog.h"
#include "testing/faultpoints.h"
#include "util/mmap_file.h"
#include "util/posix_io.h"

namespace xsketch {
namespace {

using testing::FaultPoints;

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Every test leaves the process-wide registry clean: faultpoints are
// global state, and a leaked arming would poison unrelated tests.
class FaultPointsTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultPoints::Default().DisarmAll(); }
};

TEST_F(FaultPointsTest, UnarmedNeverFires) {
  EXPECT_FALSE(FaultPoints::AnyArmed());
  EXPECT_FALSE(XS_FAULT("nothing.armed"));
  EXPECT_EQ(XS_FAULT_DELAY_MS("nothing.armed"), 0);
  // Unarmed hits are not even counted: the registry has no entry.
  EXPECT_EQ(FaultPoints::Default().counters("nothing.armed").hits, 0u);
}

TEST_F(FaultPointsTest, ArmFireDisarm) {
  FaultPoints::Default().Arm("p");
  EXPECT_TRUE(FaultPoints::AnyArmed());
  EXPECT_TRUE(XS_FAULT("p"));
  EXPECT_TRUE(XS_FAULT("p"));
  EXPECT_FALSE(XS_FAULT("q"));  // a different, unarmed point
  const auto c = FaultPoints::Default().counters("p");
  EXPECT_EQ(c.hits, 2u);
  EXPECT_EQ(c.fires, 2u);
  FaultPoints::Default().Disarm("p");
  EXPECT_FALSE(FaultPoints::AnyArmed());
  EXPECT_FALSE(XS_FAULT("p"));
}

TEST_F(FaultPointsTest, SkipAndBudget) {
  FaultPoints::Config cfg;
  cfg.skip = 2;       // hits 0 and 1 pass
  cfg.max_fires = 1;  // only one failure total
  FaultPoints::Default().Arm("p", cfg);
  EXPECT_FALSE(XS_FAULT("p"));
  EXPECT_FALSE(XS_FAULT("p"));
  EXPECT_TRUE(XS_FAULT("p"));   // third hit fires
  EXPECT_FALSE(XS_FAULT("p"));  // budget exhausted
  const auto c = FaultPoints::Default().counters("p");
  EXPECT_EQ(c.hits, 4u);
  EXPECT_EQ(c.fires, 1u);
}

TEST_F(FaultPointsTest, ProbabilityIsDeterministicInSeed) {
  FaultPoints::Config cfg;
  cfg.probability = 0.5;
  cfg.seed = 42;
  auto pattern = [&cfg]() {
    FaultPoints::Default().Arm("p", cfg);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(XS_FAULT("p"));
    return fired;
  };
  const auto first = pattern();
  const auto again = pattern();  // re-arm resets counters: same ordinals
  EXPECT_EQ(first, again);
  // Roughly half fire (SplitMix64 over 64 draws; bounds are generous).
  const int fires = static_cast<int>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 16);
  EXPECT_LT(fires, 48);
  // A different seed gives a different pattern.
  cfg.seed = 43;
  EXPECT_NE(pattern(), first);
}

TEST_F(FaultPointsTest, DelayReportedOnlyWhenFiring) {
  FaultPoints::Config cfg;
  cfg.delay_ms = 25;
  cfg.skip = 1;
  FaultPoints::Default().Arm("slow", cfg);
  EXPECT_EQ(XS_FAULT_DELAY_MS("slow"), 0);   // skipped hit: no delay
  EXPECT_EQ(XS_FAULT_DELAY_MS("slow"), 25);  // fires: delay reported
}

TEST_F(FaultPointsTest, ArmFromEnvParsesAndSkipsTypos) {
  ::setenv("XSKETCH_FAULTPOINTS",
           "a,b:0.25,c:1:50:2:3:99,broken:not-a-number,d:2.0", 1);
  EXPECT_EQ(FaultPoints::Default().ArmFromEnv(), 3);  // a, b, c
  ::unsetenv("XSKETCH_FAULTPOINTS");
  EXPECT_TRUE(XS_FAULT("a"));  // default config: always fires
  // b armed at 0.25; we only check it is armed (hits counted).
  (void)XS_FAULT("b");
  EXPECT_EQ(FaultPoints::Default().counters("b").hits, 1u);
  // c: skip=2 then 50ms delay.
  EXPECT_EQ(XS_FAULT_DELAY_MS("c"), 0);
  EXPECT_EQ(XS_FAULT_DELAY_MS("c"), 0);
  EXPECT_EQ(XS_FAULT_DELAY_MS("c"), 50);
  // Typos and out-of-range probabilities never arm.
  EXPECT_FALSE(XS_FAULT("broken"));
  EXPECT_FALSE(XS_FAULT("d"));
}

// --- instrumented IO sites ----------------------------------------------

TEST_F(FaultPointsTest, PosixIoInjectedFailures) {
  const std::string path = TempPath("fp_io.bin");
  const std::string payload(8192, 'x');
  ASSERT_TRUE(util::WriteStringToFile(path, payload).ok());

  std::string back;
  ASSERT_TRUE(util::ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, payload);

  FaultPoints::Default().Arm("posix_io.open");
  EXPECT_FALSE(util::ReadFileToString(path, &back).ok());
  FaultPoints::Default().Disarm("posix_io.open");

  // A short read must be detected, not handed to the caller as success.
  FaultPoints::Default().Arm("posix_io.short_read");
  const util::Status short_read = util::ReadFileToString(path, &back);
  EXPECT_FALSE(short_read.ok());
  EXPECT_EQ(short_read.code(), util::StatusCode::kInternal);
  FaultPoints::Default().Disarm("posix_io.short_read");

  FaultPoints::Default().Arm("posix_io.short_write");
  EXPECT_FALSE(util::WriteStringToFile(path, payload).ok());
  FaultPoints::Default().Disarm("posix_io.short_write");
  // The failed write truncated, but a clean retry works again.
  ASSERT_TRUE(util::WriteStringToFile(path, payload).ok());
  ASSERT_TRUE(util::ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, payload);
}

TEST_F(FaultPointsTest, MmapInjectedFailures) {
  const std::string path = TempPath("fp_map.bin");
  ASSERT_TRUE(util::WriteStringToFile(path, std::string(4096, 'm')).ok());

  FaultPoints::Default().Arm("mmap_file.open");
  EXPECT_FALSE(util::MappedFile::Open(path).ok());
  FaultPoints::Default().Disarm("mmap_file.open");

  FaultPoints::Default().Arm("mmap_file.mmap");
  EXPECT_FALSE(util::MappedFile::Open(path).ok());
  FaultPoints::Default().Disarm("mmap_file.mmap");

  auto mapped = util::MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped.value()->size(), 4096u);
}

// --- sketch save/load through the hardened IO path ----------------------

TEST_F(FaultPointsTest, SketchFileIoSurvivesInjectedFaults) {
  xml::Document doc = data::MakeBibliography();
  const core::TwigXSketch sketch = core::TwigXSketch::Coarsest(doc);
  const std::string path = TempPath("fp_sketch.xsk2");
  ASSERT_TRUE(core::SaveSketchToFile(sketch, path).ok());

  FaultPoints::Default().Arm("posix_io.short_read");
  xml::Document doc2 = data::MakeBibliography();
  EXPECT_FALSE(core::LoadSketchFromFile(path, doc2).ok());
  FaultPoints::Default().Disarm("posix_io.short_read");

  auto loaded = core::LoadSketchFromFile(path, doc2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
}

// --- the headline: catalog load failure mid-hot-swap --------------------

TEST_F(FaultPointsTest, CatalogHotSwapLoadFailureKeepsServing) {
  xml::Document doc = data::MakeBibliography();
  const core::FrozenSynopsis frozen(core::TwigXSketch::Coarsest(doc));
  const std::string path = TempPath("fp_catalog.xsk3");
  ASSERT_TRUE(core::SaveFrozenToFile(frozen, path).ok());

  auto catalog = service::SketchCatalog::Create();
  ASSERT_TRUE(catalog.ok());
  auto h1 = catalog.value()->Put("bib", path);
  ASSERT_TRUE(h1.ok());
  const uint64_t gen1 = h1.value().generation();

  // In-flight query state: a prepared program on generation 1.
  auto plan = h1.value().Prepare(std::string("//book"));
  ASSERT_TRUE(plan.ok());
  const double before = plan.value()->Execute();

  auto& failures_metric = obs::MetricsRegistry::Default().GetCounter(
      "xsketch_catalog_load_failures_total");
  const uint64_t failures_before = failures_metric.value();

  // The replacement load fails at the mmap site, as if the new file were
  // unreadable at swap time.
  FaultPoints::Default().Arm("mmap_file.mmap");
  auto swap = catalog.value()->Put("bib", path);
  FaultPoints::Default().Disarm("mmap_file.mmap");
  EXPECT_FALSE(swap.ok());

  // Old generation keeps serving...
  auto get = catalog.value()->Get("bib");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get.value().generation(), gen1);
  // ...the failure is visible in catalog stats and the metrics registry...
  EXPECT_EQ(catalog.value()->stats().load_failures, 1u);
  EXPECT_EQ(failures_metric.value(), failures_before + 1);
  EXPECT_EQ(catalog.value()->stats().sketches, 1u);
  // ...and the in-flight prepared program still executes, bit-identical.
  EXPECT_TRUE(BitEqual(plan.value()->Execute(), before));

  // With the fault cleared the same swap succeeds and bumps the
  // generation.
  auto retry = catalog.value()->Put("bib", path);
  ASSERT_TRUE(retry.ok());
  EXPECT_GT(retry.value().generation(), gen1);
  EXPECT_TRUE(BitEqual(plan.value()->Execute(), before));
}

}  // namespace
}  // namespace xsketch
