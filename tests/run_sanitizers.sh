#!/usr/bin/env bash
# Builds and runs the concurrency-sensitive tests under ThreadSanitizer
# and AddressSanitizer (the CI job for repos without a hosted runner).
#
#   tests/run_sanitizers.sh [thread|address]...   # default: both
#
# Uses separate build trees (build-tsan/, build-asan/) so sanitized
# objects never mix with the regular build/.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
# builder_test covers the parallel XBUILD candidate-scoring path;
# obs_test drives concurrent writers through the shared MetricsRegistry;
# trace_test exercises multi-thread span recording, the flight recorder's
# concurrent record/dump paths, and the CAS-loop gauge updates;
# compile_test hammers concurrent Prepare/Execute through the LRU plan
# cache and the compiler's shared expansion cache;
# differential_test drives the whole pipeline through 8-thread batch
# estimation (its runner sets batch_threads = 8), with the sweep size
# reduced below so sanitizer overhead stays in budget;
# faultpoints_test exercises the injected-failure paths (catalog
# hot-swap rollback included) whose error handling rarely runs clean;
# daemon_test floods the event-loop server from concurrent client
# threads — admission shedding, deadline expiry, and drain-under-load
# are exactly the cross-thread handoffs TSan exists to check;
# exec_test runs the executor differential sweep (stateless operators
# over a shared immutable StreamIndex — ASan checks the range probes);
# plan_test hammers Session::Plan and Prepare from concurrent threads
# (the planner's cardinality calls ride the service's LRU plan cache,
# the same shared state compile_test covers, now under a second caller).
TARGETS=(service_test estimator_test builder_test obs_test trace_test
         compile_test faultpoints_test daemon_test exec_test plan_test
         differential_test)
MODES=("${@:-thread address}")

for MODE in ${MODES[@]}; do
  case "$MODE" in
    thread)  BUILD="$ROOT/build-tsan" ;;
    address) BUILD="$ROOT/build-asan" ;;
    *) echo "unknown sanitizer '$MODE' (want thread|address)" >&2; exit 2 ;;
  esac
  echo "=== $MODE sanitizer ==="
  cmake -B "$BUILD" -S "$ROOT" -DXSKETCH_SANITIZE="$MODE" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$BUILD" -j"$(nproc)" --target "${TARGETS[@]}"
  for t in "${TARGETS[@]}"; do
    echo "--- $t ($MODE) ---"
    if [ "$t" = differential_test ]; then
      XSKETCH_DIFF_DOCS=1 XSKETCH_DIFF_QUERIES=8 "$BUILD/tests/$t"
    else
      "$BUILD/tests/$t"
    fi
  done
done
echo "all sanitizer runs passed"
