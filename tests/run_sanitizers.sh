#!/usr/bin/env bash
# Builds and runs the concurrency-sensitive tests under ThreadSanitizer
# and AddressSanitizer (the CI job for repos without a hosted runner).
#
#   tests/run_sanitizers.sh [thread|address]...   # default: both
#
# Uses separate build trees (build-tsan/, build-asan/) so sanitized
# objects never mix with the regular build/.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
# builder_test covers the parallel XBUILD candidate-scoring path;
# obs_test drives concurrent writers through the shared MetricsRegistry.
TARGETS=(service_test estimator_test builder_test obs_test)
MODES=("${@:-thread address}")

for MODE in ${MODES[@]}; do
  case "$MODE" in
    thread)  BUILD="$ROOT/build-tsan" ;;
    address) BUILD="$ROOT/build-asan" ;;
    *) echo "unknown sanitizer '$MODE' (want thread|address)" >&2; exit 2 ;;
  esac
  echo "=== $MODE sanitizer ==="
  cmake -B "$BUILD" -S "$ROOT" -DXSKETCH_SANITIZE="$MODE" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$BUILD" -j"$(nproc)" --target "${TARGETS[@]}"
  for t in "${TARGETS[@]}"; do
    echo "--- $t ($MODE) ---"
    "$BUILD/tests/$t"
  done
done
echo "all sanitizer runs passed"
