#include <gtest/gtest.h>

#include <string>

#include "xml/document.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xsketch::xml {
namespace {

// --- Document construction -----------------------------------------------------

// Regression: SkipProlog/SkipMisc used to discard SkipUntil's failure
// status, so an unterminated prolog construct never advanced the cursor
// and Parse spun forever. Each of these must return ParseError promptly.
TEST(ParserHardeningTest, UnterminatedPrologFailsInsteadOfHanging) {
  const char* inputs[] = {
      "<?xml version=\"1.0\"",         // unterminated XML declaration
      "<?xml version=\"1.0\"?",        // terminator cut mid-way
      "<?target data with no close",   // unterminated prolog PI
      "<!-- comment with no close",    // unterminated prolog comment
      "  <!-- open --><?pi",           // terminated comment, then open PI
      "<!DOCTYPE r [ <!ELEMENT r",     // unterminated DOCTYPE subset
  };
  for (const char* input : inputs) {
    auto r = ParseDocument(input);
    ASSERT_FALSE(r.ok()) << input;
    EXPECT_EQ(r.status().code(), util::StatusCode::kParseError) << input;
  }
}

TEST(ParserHardeningTest, UnterminatedTrailingMiscFails) {
  for (const char* input : {"<r/><!-- trailing", "<r/><?trailing"}) {
    auto r = ParseDocument(input);
    ASSERT_FALSE(r.ok()) << input;
    EXPECT_EQ(r.status().code(), util::StatusCode::kParseError) << input;
  }
}

TEST(ParserHardeningTest, TerminatedPrologAndMiscStillParse) {
  auto r = ParseDocument(
      "<?xml version=\"1.0\"?><!-- ok --><?pi data?>"
      "<!DOCTYPE r [<!ELEMENT r EMPTY>]>"
      "<r><a/></r><!-- tail --><?pi2?>  ");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(DocumentTest, BuildSmallTree) {
  Document doc;
  NodeId root = doc.AddNode(kInvalidNode, "bib");
  NodeId a = doc.AddNode(root, "author");
  NodeId n = doc.AddNode(a, "name");
  doc.SetValue(n, "42");
  doc.Seal();

  EXPECT_EQ(doc.size(), 3u);
  EXPECT_EQ(doc.root(), root);
  EXPECT_EQ(doc.parent(a), root);
  EXPECT_EQ(doc.parent(n), a);
  EXPECT_EQ(doc.tag_name(root), "bib");
  EXPECT_EQ(doc.tag_name(n), "name");
}

TEST(DocumentTest, ChildOrderPreserved) {
  Document doc;
  NodeId root = doc.AddNode(kInvalidNode, "r");
  NodeId c1 = doc.AddNode(root, "a");
  NodeId c2 = doc.AddNode(root, "b");
  NodeId c3 = doc.AddNode(root, "a");
  doc.Seal();
  std::vector<NodeId> kids = doc.Children(root);
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(kids[0], c1);
  EXPECT_EQ(kids[1], c2);
  EXPECT_EQ(kids[2], c3);
}

TEST(DocumentTest, ChildCountWithTag) {
  Document doc;
  NodeId root = doc.AddNode(kInvalidNode, "r");
  doc.AddNode(root, "a");
  doc.AddNode(root, "b");
  doc.AddNode(root, "a");
  TagId a = doc.LookupTag("a");
  TagId b = doc.LookupTag("b");
  EXPECT_EQ(doc.ChildCountWithTag(root, a), 2u);
  EXPECT_EQ(doc.ChildCountWithTag(root, b), 1u);
}

TEST(DocumentTest, NumericValueParsing) {
  Document doc;
  NodeId root = doc.AddNode(kInvalidNode, "r");
  NodeId x = doc.AddNode(root, "x");
  NodeId y = doc.AddNode(root, "y");
  NodeId z = doc.AddNode(root, "z");
  doc.SetValue(x, "123");
  doc.SetValue(y, "hello");
  doc.SetValue(z, static_cast<int64_t>(-5));
  doc.Seal();

  ASSERT_TRUE(doc.numeric_value(x).has_value());
  EXPECT_EQ(*doc.numeric_value(x), 123);
  EXPECT_FALSE(doc.numeric_value(y).has_value());
  EXPECT_EQ(doc.text_value(y), "hello");
  EXPECT_EQ(*doc.numeric_value(z), -5);
  EXPECT_FALSE(doc.numeric_value(root).has_value());
  EXPECT_FALSE(doc.has_value(root));
}

TEST(DocumentTest, SealComputesDepthsAndTagIndex) {
  Document doc;
  NodeId root = doc.AddNode(kInvalidNode, "r");
  NodeId a = doc.AddNode(root, "a");
  NodeId b = doc.AddNode(a, "b");
  NodeId b2 = doc.AddNode(root, "b");
  doc.Seal();

  EXPECT_EQ(doc.Depth(root), 0u);
  EXPECT_EQ(doc.Depth(a), 1u);
  EXPECT_EQ(doc.Depth(b), 2u);
  EXPECT_EQ(doc.max_depth(), 2u);
  TagId tb = doc.LookupTag("b");
  const auto& bs = doc.NodesWithTag(tb);
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0], b);
  EXPECT_EQ(bs[1], b2);
}

TEST(DocumentTest, StatsComputation) {
  Document doc;
  NodeId root = doc.AddNode(kInvalidNode, "r");
  NodeId a = doc.AddNode(root, "a");
  doc.AddNode(root, "b");
  NodeId v = doc.AddNode(a, "v");
  doc.SetValue(v, static_cast<int64_t>(1));
  doc.Seal();
  DocumentStats stats = ComputeStats(doc);
  EXPECT_EQ(stats.element_count, 4u);
  EXPECT_EQ(stats.value_count, 1u);
  EXPECT_EQ(stats.distinct_tags, 4u);
  EXPECT_EQ(stats.max_depth, 2u);
  // Internal nodes: r (2 children), a (1 child) -> avg 1.5.
  EXPECT_DOUBLE_EQ(stats.avg_fanout, 1.5);
}

// --- Parser ---------------------------------------------------------------------

TEST(ParserTest, MinimalDocument) {
  auto r = ParseDocument("<root/>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value().tag_name(0), "root");
}

TEST(ParserTest, NestedElementsAndText) {
  auto r = ParseDocument(
      "<bib><author><name>Smith</name><paper><year>2001</year></paper>"
      "</author></bib>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Document& doc = r.value();
  EXPECT_EQ(doc.size(), 5u);
  TagId year = doc.LookupTag("year");
  ASSERT_NE(year, util::StringInterner::kNotFound);
  NodeId y = doc.NodesWithTag(year)[0];
  EXPECT_EQ(*doc.numeric_value(y), 2001);
  TagId name = doc.LookupTag("name");
  EXPECT_EQ(doc.text_value(doc.NodesWithTag(name)[0]), "Smith");
}

TEST(ParserTest, AttributesBecomeChildNodes) {
  auto r = ParseDocument("<movie id=\"7\" lang='en'><title>X</title></movie>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Document& doc = r.value();
  TagId id = doc.LookupTag("@id");
  ASSERT_NE(id, util::StringInterner::kNotFound);
  NodeId attr = doc.NodesWithTag(id)[0];
  EXPECT_EQ(doc.parent(attr), doc.root());
  EXPECT_EQ(*doc.numeric_value(attr), 7);
  EXPECT_EQ(doc.text_value(doc.NodesWithTag(doc.LookupTag("@lang"))[0]), "en");
}

TEST(ParserTest, XmlDeclarationCommentsAndDoctype) {
  auto r = ParseDocument(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE site SYSTEM \"auction.dtd\" [ <!ENTITY x \"y\"> ]>\n"
      "<!-- a comment -->\n"
      "<site><!-- inner --><a/></site>\n"
      "<!-- trailing -->");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(ParserTest, CdataAndEntities) {
  auto r = ParseDocument(
      "<t><a>one &amp; two &lt;three&gt;</a><b><![CDATA[x < y]]></b>"
      "<c>&#65;&#x42;</c></t>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Document& doc = r.value();
  EXPECT_EQ(doc.text_value(doc.NodesWithTag(doc.LookupTag("a"))[0]),
            "one & two <three>");
  EXPECT_EQ(doc.text_value(doc.NodesWithTag(doc.LookupTag("b"))[0]), "x < y");
  EXPECT_EQ(doc.text_value(doc.NodesWithTag(doc.LookupTag("c"))[0]), "AB");
}

TEST(ParserTest, MismatchedTagFails) {
  auto r = ParseDocument("<a><b></a></b>");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kParseError);
}

TEST(ParserTest, TruncatedInputFails) {
  EXPECT_FALSE(ParseDocument("<a><b>").ok());
  EXPECT_FALSE(ParseDocument("<a attr=>").ok());
  EXPECT_FALSE(ParseDocument("<a attr='x>").ok());
  EXPECT_FALSE(ParseDocument("").ok());
  EXPECT_FALSE(ParseDocument("   ").ok());
}

TEST(ParserTest, TrailingGarbageFails) {
  EXPECT_FALSE(ParseDocument("<a/><b/>").ok());
  EXPECT_FALSE(ParseDocument("<a/>junk").ok());
}

TEST(ParserTest, MixedContentConcatenatesTrimmedChunks) {
  auto r = ParseDocument("<p>  hello <b/> world  </p>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().text_value(r.value().root()), "hello world");
}

TEST(ParserTest, SelfClosingWithAttributes) {
  auto r = ParseDocument("<r><item qty=\"3\"/></r>");
  ASSERT_TRUE(r.ok());
  const Document& doc = r.value();
  EXPECT_EQ(doc.size(), 3u);
  EXPECT_EQ(*doc.numeric_value(doc.NodesWithTag(doc.LookupTag("@qty"))[0]), 3);
}

TEST(ParserTest, DeepNesting) {
  std::string in, close;
  for (int i = 0; i < 200; ++i) {
    in += "<d>";
    close = "</d>" + close;
  }
  auto r = ParseDocument(in + close);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 200u);
  EXPECT_EQ(r.value().max_depth(), 199u);
}

// --- Writer / round-trip ---------------------------------------------------------

TEST(WriterTest, EscapesSpecialCharacters) {
  Document doc;
  NodeId root = doc.AddNode(kInvalidNode, "t");
  doc.SetValue(root, "a & b < c");
  doc.Seal();
  std::string out = WriteDocument(doc, {.indent = false});
  EXPECT_NE(out.find("a &amp; b &lt; c"), std::string::npos);
}

TEST(WriterTest, AttributesSerializedInline) {
  auto r = ParseDocument("<m id=\"3\"><t>x</t></m>");
  ASSERT_TRUE(r.ok());
  std::string out = WriteDocument(r.value(), {.indent = false});
  EXPECT_NE(out.find("<m id=\"3\">"), std::string::npos);
}

TEST(WriterTest, RoundTripPreservesStructure) {
  const char* input =
      "<site><people><person id=\"1\"><name>A</name><age>30</age></person>"
      "<person id=\"2\"><name>B</name></person></people></site>";
  auto first = ParseDocument(input);
  ASSERT_TRUE(first.ok());
  std::string serialized = WriteDocument(first.value());
  auto second = ParseDocument(serialized);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  const Document& a = first.value();
  const Document& b = second.value();
  ASSERT_EQ(a.size(), b.size());
  for (NodeId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tag_name(i), b.tag_name(i));
    EXPECT_EQ(a.parent(i), b.parent(i));
    EXPECT_EQ(a.has_value(i), b.has_value(i));
    if (a.has_value(i)) EXPECT_EQ(a.text_value(i), b.text_value(i));
  }
}

TEST(WriterTest, SerializedSizeMatchesString) {
  auto r = ParseDocument("<a><b>1</b><c x=\"2\"/></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(SerializedSize(r.value()), WriteDocument(r.value()).size());
}

}  // namespace
}  // namespace xsketch::xml
