#include <gtest/gtest.h>

#include <cmath>

#include "core/builder.h"
#include "core/estimator.h"
#include "core/twig_xsketch.h"
#include "data/figures.h"
#include "data/xmark.h"
#include "query/evaluator.h"
#include "query/workload.h"
#include "query/xpath_parser.h"
#include "xml/parser.h"

namespace xsketch::core {
namespace {

SynNodeId NodeByTag(const Synopsis& syn, const xml::Document& doc,
                    const char* tag) {
  const auto& nodes = syn.NodesWithTag(doc.LookupTag(tag));
  EXPECT_EQ(nodes.size(), 1u) << tag;
  return nodes[0];
}

double EstimatePath(const TwigXSketch& sketch, const char* path) {
  auto q = query::ParsePath(path, sketch.doc().tags());
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return Estimator(sketch).Estimate(q.value());
}

double EstimateFor(const TwigXSketch& sketch, const char* clause) {
  auto q = query::ParseForClause(clause, sketch.doc().tags());
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return Estimator(sketch).Estimate(q.value());
}

// --- Figure 4: the motivating example ------------------------------------------------

TEST(EstimatorTest, Figure4ExactWithJointHistogram) {
  // With the 2-D (b, c) edge histogram the Twig XSKETCH separates the two
  // documents exactly: 2000 vs 10100 tuples (paper §3.2).
  xml::Document a = data::MakeFigure4A();
  xml::Document b = data::MakeFigure4B();
  CoarsestOptions opts;
  opts.max_initial_dims = 2;  // joint (b, c) histogram at node A
  TwigXSketch sa = TwigXSketch::Coarsest(a, opts);
  TwigXSketch sb = TwigXSketch::Coarsest(b, opts);
  const char* twig = "for t0 in //a, t1 in t0/b, t2 in t0/c";
  EXPECT_NEAR(EstimateFor(sa, twig), 2000.0, 1e-6);
  EXPECT_NEAR(EstimateFor(sb, twig), 10100.0, 1e-6);
}

TEST(EstimatorTest, Figure4SingleBucketLosesCorrelation) {
  // One bucket collapses f_A to its means (55, 55): both documents then
  // estimate 2*55*55 = 6050 — the single-path XSKETCH failure mode.
  CoarsestOptions opts;
  opts.initial_buckets = 1;
  xml::Document a = data::MakeFigure4A();
  xml::Document b = data::MakeFigure4B();
  TwigXSketch sa = TwigXSketch::Coarsest(a, opts);
  TwigXSketch sb = TwigXSketch::Coarsest(b, opts);
  const char* twig = "for t0 in //a, t1 in t0/b, t2 in t0/c";
  EXPECT_NEAR(EstimateFor(sa, twig), 6050.0, 1e-6);
  EXPECT_NEAR(EstimateFor(sb, twig), 6050.0, 1e-6);
}

TEST(EstimatorTest, Figure4SinglePathsExactEitherWay) {
  xml::Document a = data::MakeFigure4A();
  CoarsestOptions opts;
  opts.initial_buckets = 1;
  TwigXSketch sketch = TwigXSketch::Coarsest(a, opts);
  EXPECT_NEAR(EstimatePath(sketch, "//a"), 2.0, 1e-9);
  EXPECT_NEAR(EstimatePath(sketch, "//b"), 110.0, 1e-9);
  EXPECT_NEAR(EstimatePath(sketch, "/r/a/c"), 110.0, 1e-9);
}

// --- Bibliography: the paper's §4 worked estimation --------------------------------

class BibliographyEstimation : public ::testing::Test {
 protected:
  BibliographyEstimation() : doc_(data::MakeBibliography()) {}

  TwigXSketch MakeSketch(int initial_dims) {
    CoarsestOptions opts;
    opts.initial_buckets = 16;
    opts.max_initial_dims = initial_dims;
    return TwigXSketch::Coarsest(doc_, opts);
  }

  // The running example: authors with book, name, paper; paper with
  // keyword and year (all output nodes). True selectivity is 1 (only a2
  // has a book, with one paper carrying one keyword and one year).
  static constexpr const char* kTwig =
      "for t0 in //author, t1 in t0/book, t2 in t0/name, t3 in t0/paper, "
      "t4 in t3/keyword, t5 in t3/year";

  xml::Document doc_;
};

TEST_F(BibliographyEstimation, TruthIsOne) {
  auto q = query::ParseForClause(kTwig, doc_.tags());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(query::ExactEvaluator(doc_).Selectivity(q.value()), 1u);
}

TEST_F(BibliographyEstimation, ForwardOnlyUniformityGivesFiveThirds) {
  // H_A covers (name, paper); book falls to Forward Uniformity (avg 1/3);
  // H_P covers (title, year, keyword) but is not conditioned on the
  // ancestor: E[k*y] = 1.25 over all papers. Estimate:
  //   |A| * (1/3) * sum f_A(n,p) n p * 1.25 = 3 * 1/3 * 4/3 * 1.25 = 5/3.
  TwigXSketch sketch = MakeSketch(3);
  EXPECT_NEAR(EstimateFor(sketch, kTwig), 5.0 / 3.0, 1e-6);
}

TEST_F(BibliographyEstimation, CoveringBookTightensEstimate) {
  // edge-expand author's histogram with the book count: the b=0 authors
  // now contribute nothing. Without backward conditioning at paper the
  // estimate becomes |A| * f_A(1,1,1) * 1 * 1 * 1 * E[k*y] = 1.25.
  TwigXSketch sketch = MakeSketch(3);
  const Synopsis& syn = sketch.synopsis();
  SynNodeId a = NodeByTag(syn, doc_, "author");
  SynNodeId b = NodeByTag(syn, doc_, "book");
  ASSERT_TRUE(sketch.ExpandScope(a, CountRef{true, a, b}));
  EXPECT_NEAR(EstimateFor(sketch, kTwig), 1.25, 1e-6);
}

TEST_F(BibliographyEstimation, BackwardCountMakesEstimateExact) {
  // Adding the backward count (author→paper) at paper conditions E[k*y]
  // on the ancestor's paper fanout: E[k*y | p=1] = 1, giving the exact
  // selectivity 1 (Correlation Scope Independence, paper §4).
  TwigXSketch sketch = MakeSketch(3);
  const Synopsis& syn = sketch.synopsis();
  SynNodeId a = NodeByTag(syn, doc_, "author");
  SynNodeId b = NodeByTag(syn, doc_, "book");
  SynNodeId p = NodeByTag(syn, doc_, "paper");
  ASSERT_TRUE(sketch.ExpandScope(a, CountRef{true, a, b}));
  ASSERT_TRUE(sketch.ExpandScope(p, CountRef{false, a, p}));
  EXPECT_NEAR(EstimateFor(sketch, kTwig), 1.0, 1e-6);
}

TEST_F(BibliographyEstimation, SinglePathEstimates) {
  TwigXSketch sketch = MakeSketch(3);
  EXPECT_NEAR(EstimatePath(sketch, "/bib"), 1.0, 1e-9);
  EXPECT_NEAR(EstimatePath(sketch, "/bib/author"), 3.0, 1e-9);
  EXPECT_NEAR(EstimatePath(sketch, "//paper"), 4.0, 1e-9);
  EXPECT_NEAR(EstimatePath(sketch, "//paper/keyword"), 5.0, 1e-9);
  EXPECT_NEAR(EstimatePath(sketch, "//keyword"), 5.0, 1e-9);
}

TEST_F(BibliographyEstimation, BranchingPredicateViaParentFraction) {
  // //author[book]: uncovered existential edge uses the stored parent
  // fraction 1/3 with q=1, giving exactly 1.
  CoarsestOptions opts;
  opts.initial_buckets = 16;
  opts.max_initial_dims = 0;  // no histograms at all
  TwigXSketch sketch = TwigXSketch::Coarsest(doc_, opts);
  EXPECT_NEAR(EstimatePath(sketch, "//author[book]"), 1.0, 1e-9);
  // F-stable branch: every author has a paper.
  EXPECT_NEAR(EstimatePath(sketch, "//author[paper]"), 3.0, 1e-9);
}

TEST_F(BibliographyEstimation, BranchingPredicateViaCoveredCount) {
  TwigXSketch sketch = MakeSketch(3);
  const Synopsis& syn = sketch.synopsis();
  SynNodeId a = NodeByTag(syn, doc_, "author");
  SynNodeId b = NodeByTag(syn, doc_, "book");
  ASSERT_TRUE(sketch.ExpandScope(a, CountRef{true, a, b}));
  // With the count covered, P[book >= 1] is read off the histogram: 1/3.
  EXPECT_NEAR(EstimatePath(sketch, "//author[book]"), 1.0, 1e-9);
}

TEST_F(BibliographyEstimation, ValuePredicates) {
  TwigXSketch sketch = MakeSketch(3);
  // Years: 1999, 2002, 2001, 1998. Predicate > 2000 selects half.
  EXPECT_NEAR(EstimatePath(sketch, "//year[.>2000]"), 2.0, 0.2);
  // Out-of-domain predicate.
  EXPECT_NEAR(EstimatePath(sketch, "//year[.>3000]"), 0.0, 1e-9);
  // Predicate on a node without values estimates zero.
  EXPECT_NEAR(EstimatePath(sketch, "//author[.>0]"), 0.0, 1e-9);
}

TEST_F(BibliographyEstimation, ZeroForAbsentStructure) {
  TwigXSketch sketch = MakeSketch(3);
  EXPECT_EQ(EstimatePath(sketch, "//nonexistent"), 0.0);
  EXPECT_EQ(EstimatePath(sketch, "//book/keyword"), 0.0);
  EXPECT_EQ(EstimatePath(sketch, "/author"), 0.0);  // root tag mismatch
  EXPECT_EQ(EstimateFor(sketch, "for t0 in //book, t1 in t0/year"), 0.0);
}

TEST_F(BibliographyEstimation, DescendantExpansion) {
  TwigXSketch sketch = MakeSketch(3);
  // //author//keyword: the only synopsis path is author/paper/keyword.
  auto q = query::ParsePath("//author//keyword", doc_.tags());
  ASSERT_TRUE(q.ok());
  const double est = Estimator(sketch).Estimate(q.value());
  EXPECT_NEAR(est, 5.0, 1e-6);
}

// --- Joint value+count histograms (paper §3.2 extension) -----------------------------

class JointValueHistogram : public ::testing::Test {
 protected:
  JointValueHistogram() : doc_(data::MakeMovieIntro()) {}

  // Sketch whose movie histogram covers the actor and producer counts.
  TwigXSketch MakeSketch() {
    CoarsestOptions opts;
    opts.initial_buckets = 16;
    opts.max_initial_dims = 0;
    TwigXSketch sketch = TwigXSketch::Coarsest(doc_, opts);
    const Synopsis& syn = sketch.synopsis();
    SynNodeId movie = NodeByTag(syn, doc_, "movie");
    SynNodeId actor = NodeByTag(syn, doc_, "actor");
    SynNodeId producer = NodeByTag(syn, doc_, "producer");
    EXPECT_TRUE(sketch.ExpandScope(movie, CountRef{true, movie, actor}));
    EXPECT_TRUE(
        sketch.ExpandScope(movie, CountRef{true, movie, producer}));
    return sketch;
  }

  xml::Document doc_;
};

TEST_F(JointValueHistogram, IndependenceUnderestimatesCorrelatedGenre) {
  // //movie[type=0]/actor: truth 30 (action movies have the big casts).
  // Value independence gives 5 * 0.6 * 6.6 = 19.8.
  TwigXSketch sketch = MakeSketch();
  EXPECT_NEAR(EstimatePath(sketch, "//movie[type=0]/actor"), 19.8, 0.2);
}

TEST_F(JointValueHistogram, ValueExpandMakesGenreQueriesExact) {
  TwigXSketch sketch = MakeSketch();
  const Synopsis& syn = sketch.synopsis();
  SynNodeId movie = NodeByTag(syn, doc_, "movie");
  SynNodeId actor = NodeByTag(syn, doc_, "actor");
  SynNodeId type = NodeByTag(syn, doc_, "type");
  ASSERT_TRUE(sketch.ExpandValueScope(type, CountRef{false, movie, actor}));
  EXPECT_TRUE(sketch.HasBackwardDims());  // context-dependent estimation

  // P(type = 0 | actor count) is now read off H^v: exact 30 and 3.
  EXPECT_NEAR(EstimatePath(sketch, "//movie[type=0]/actor"), 30.0, 1e-6);
  EXPECT_NEAR(EstimatePath(sketch, "//movie[type=1]/actor"), 3.0, 1e-6);
  // The paper's intro twig: actors x producers of action movies
  // (10*3 + 8*2 + 12*4 = 94), exact thanks to the joint histograms.
  EXPECT_NEAR(
      EstimateFor(sketch,
                  "for t0 in //movie[type=0], t1 in t0/actor, "
                  "t2 in t0/producer"),
      94.0, 1e-6);
}

TEST_F(JointValueHistogram, MarginalQueriesUnaffected) {
  TwigXSketch sketch = MakeSketch();
  const Synopsis& syn = sketch.synopsis();
  SynNodeId movie = NodeByTag(syn, doc_, "movie");
  SynNodeId actor = NodeByTag(syn, doc_, "actor");
  SynNodeId type = NodeByTag(syn, doc_, "type");
  ASSERT_TRUE(sketch.ExpandValueScope(type, CountRef{false, movie, actor}));
  // Queries that do not condition still use the 1-D marginal: exact here.
  EXPECT_NEAR(EstimatePath(sketch, "//type[.=0]"), 3.0, 1e-6);
  EXPECT_NEAR(EstimatePath(sketch, "//movie/actor"), 33.0, 1e-6);
}

TEST_F(JointValueHistogram, ExpandRules) {
  TwigXSketch sketch = MakeSketch();
  const Synopsis& syn = sketch.synopsis();
  SynNodeId movie = NodeByTag(syn, doc_, "movie");
  SynNodeId actor = NodeByTag(syn, doc_, "actor");
  SynNodeId type = NodeByTag(syn, doc_, "type");
  SynNodeId name = NodeByTag(syn, doc_, "name");
  // movie (no values) cannot gain a joint value histogram.
  EXPECT_FALSE(
      sketch.ExpandValueScope(movie, CountRef{false, movie, actor}));
  // Duplicate dimension refused.
  ASSERT_TRUE(sketch.ExpandValueScope(type, CountRef{false, movie, actor}));
  EXPECT_FALSE(
      sketch.ExpandValueScope(type, CountRef{false, movie, actor}));
  // Nonexistent edge refused (name is not a child of movie).
  EXPECT_FALSE(sketch.ExpandValueScope(type, CountRef{false, movie, name}));
  EXPECT_GT(sketch.SizeBytes(), MakeSketch().SizeBytes());
}

// --- Behaviour on larger data ----------------------------------------------------------

TEST(EstimatorLargeTest, PathEstimatesMatchTruthOnStableXMark) {
  xml::Document doc = data::GenerateXMark({.seed = 4, .scale = 0.05});
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  query::ExactEvaluator eval(doc);
  for (const char* path :
       {"//person", "//open_auction", "//item", "//person/name",
        "//open_auction/bidder", "//bidder/increase"}) {
    auto q = query::ParsePath(path, doc.tags());
    ASSERT_TRUE(q.ok());
    const double truth = static_cast<double>(eval.Selectivity(q.value()));
    const double est = Estimator(sketch).Estimate(q.value());
    ASSERT_GT(truth, 0.0) << path;
    EXPECT_LT(std::abs(est - truth) / truth, 0.05) << path;
  }
}

TEST(EstimatorLargeTest, NegativeQueriesEstimateNearZero) {
  xml::Document doc = data::GenerateXMark({.seed = 4, .scale = 0.05});
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  query::WorkloadOptions opts;
  opts.seed = 21;
  opts.num_queries = 25;
  query::Workload neg = query::GenerateNegativeWorkload(doc, opts);
  Estimator est(sketch);
  // The paper reports "close to zero" estimates for negative workloads;
  // structural misses are exactly zero, value-miss estimates are small.
  double total = 0;
  for (const auto& q : neg.queries) total += est.Estimate(q.twig);
  EXPECT_LT(total / neg.queries.size(), 1.0);
}

TEST(EstimatorLargeTest, DeterministicEstimates) {
  xml::Document doc = data::GenerateXMark({.seed = 4, .scale = 0.03});
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  auto q = query::ParsePath("//person[profile/age>=30]/name", doc.tags());
  ASSERT_TRUE(q.ok());
  Estimator est(sketch);
  const double a = est.Estimate(q.value());
  const double b = est.Estimate(q.value());
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0.0);
}

// Property sweep: estimates are finite and non-negative over a random
// positive workload at several coarsest configurations.
class EstimatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorPropertyTest, FiniteNonNegativeEstimates) {
  const int buckets = GetParam();
  xml::Document doc = data::GenerateXMark({.seed = 6, .scale = 0.03});
  CoarsestOptions opts;
  opts.initial_buckets = buckets;
  TwigXSketch sketch = TwigXSketch::Coarsest(doc, opts);
  query::WorkloadOptions wopts;
  wopts.seed = 31;
  wopts.num_queries = 30;
  wopts.value_pred_fraction = 0.5;
  query::Workload w = query::GeneratePositiveWorkload(doc, wopts);
  Estimator est(sketch);
  for (const auto& q : w.queries) {
    const double e = est.Estimate(q.twig);
    EXPECT_TRUE(std::isfinite(e));
    EXPECT_GE(e, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Buckets, EstimatorPropertyTest,
                         ::testing::Values(1, 2, 8, 32));

}  // namespace
}  // namespace xsketch::core

namespace xsketch::core {
namespace {

// --- EstimateWithStats diagnostics ----------------------------------------------------

TEST(EstimateStatsTest, CountsAssumptionUsage) {
  xml::Document doc = data::MakeBibliography();
  CoarsestOptions opts;
  opts.initial_buckets = 16;
  opts.max_initial_dims = 2;
  TwigXSketch sketch = TwigXSketch::Coarsest(doc, opts);
  Estimator est(sketch);

  // //author/book: book is not covered at author -> one uniformity term.
  auto q1 = query::ParsePath("//author/book", doc.tags());
  ASSERT_TRUE(q1.ok());
  EstimateStats s1 = est.EstimateWithStats(q1.value());
  EXPECT_EQ(s1.estimate, est.Estimate(q1.value()));
  EXPECT_GE(s1.uniformity_terms, 1);
  EXPECT_EQ(s1.value_fractions, 0);
  EXPECT_EQ(s1.existential_terms, 0);

  // //author/paper: covered by the initial F-stable histogram.
  auto q2 = query::ParsePath("//author/paper", doc.tags());
  ASSERT_TRUE(q2.ok());
  EstimateStats s2 = est.EstimateWithStats(q2.value());
  EXPECT_GE(s2.covered_terms, 1);

  // Branching + value predicate + '//' expansion all leave traces.
  auto q3 = query::ParsePath("//author[book]//keyword", doc.tags());
  ASSERT_TRUE(q3.ok());
  EstimateStats s3 = est.EstimateWithStats(q3.value());
  EXPECT_GE(s3.existential_terms, 1);
  EXPECT_GE(s3.descendant_chains, 1);

  auto q4 = query::ParsePath("//paper[year>2000]", doc.tags());
  ASSERT_TRUE(q4.ok());
  EstimateStats s4 = est.EstimateWithStats(q4.value());
  EXPECT_GE(s4.value_fractions, 1);
}

TEST(EstimateStatsTest, ConditionedNodesWithBackwardDims) {
  xml::Document doc = data::MakeBibliography();
  CoarsestOptions opts;
  opts.initial_buckets = 16;
  opts.max_initial_dims = 2;
  TwigXSketch sketch = TwigXSketch::Coarsest(doc, opts);
  const Synopsis& syn = sketch.synopsis();
  SynNodeId a = syn.NodesWithTag(doc.LookupTag("author"))[0];
  SynNodeId p = syn.NodesWithTag(doc.LookupTag("paper"))[0];
  ASSERT_TRUE(sketch.ExpandScope(p, CountRef{false, a, p}));
  Estimator est(sketch);
  auto q = query::ParseForClause(
      "for t0 in //author, t1 in t0/name, t2 in t0/paper, t3 in t2/keyword",
      doc.tags());
  ASSERT_TRUE(q.ok());
  EstimateStats stats = est.EstimateWithStats(q.value());
  EXPECT_GE(stats.conditioned_nodes, 1);
}

}  // namespace
}  // namespace xsketch::core

namespace xsketch::core {
namespace {

// --- Estimator option caps --------------------------------------------------------------

TEST(EstimatorOptionsTest, PathLengthCapLimitsDescendantExpansion) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  auto q = query::ParsePath("//bib//keyword", doc.tags());
  ASSERT_TRUE(q.ok());
  // keyword sits 3 levels below bib (author/paper/keyword).
  EstimatorOptions deep;
  deep.max_path_length = 8;
  EXPECT_NEAR(Estimator(sketch, deep).Estimate(q.value()), 5.0, 1e-6);
  EstimatorOptions shallow;
  shallow.max_path_length = 2;  // too short to reach keyword
  EXPECT_EQ(Estimator(sketch, shallow).Estimate(q.value()), 0.0);
}

TEST(EstimatorOptionsTest, DescendantPathCapIsDeterministicUnderestimate) {
  xml::Document doc = data::GenerateXMark({.seed = 40, .scale = 0.02});
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  auto q = query::ParsePath("//site//text", doc.tags());
  ASSERT_TRUE(q.ok());
  EstimatorOptions full;
  full.max_descendant_paths = 4096;
  EstimatorOptions capped;
  capped.max_descendant_paths = 3;
  const double full_est = Estimator(sketch, full).Estimate(q.value());
  const double capped_est = Estimator(sketch, capped).Estimate(q.value());
  EXPECT_LE(capped_est, full_est + 1e-9);
  EXPECT_EQ(capped_est, Estimator(sketch, capped).Estimate(q.value()));
}

TEST(EstimatorOptionsTest, ValidateRejectsNonsense) {
  EstimatorOptions ok;
  EXPECT_TRUE(ok.Validate().ok());

  EstimatorOptions zero_paths;
  zero_paths.max_descendant_paths = 0;
  EXPECT_EQ(zero_paths.Validate().code(),
            util::StatusCode::kInvalidArgument);

  EstimatorOptions negative_length;
  negative_length.max_path_length = -1;
  EXPECT_EQ(negative_length.Validate().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(CoarsestOptionsTest, ValidateRejectsNonsense) {
  CoarsestOptions ok;
  EXPECT_TRUE(ok.Validate().ok());

  CoarsestOptions zero_buckets;
  zero_buckets.initial_buckets = 0;
  EXPECT_EQ(zero_buckets.Validate().code(),
            util::StatusCode::kInvalidArgument);

  CoarsestOptions negative_value_buckets;
  negative_value_buckets.initial_value_buckets = -4;
  EXPECT_EQ(negative_value_buckets.Validate().code(),
            util::StatusCode::kInvalidArgument);

  CoarsestOptions no_dims;  // 0 is the "pure graph synopsis" config
  no_dims.max_initial_dims = 0;
  EXPECT_TRUE(no_dims.Validate().ok());
  CoarsestOptions negative_dims;
  negative_dims.max_initial_dims = -1;
  EXPECT_EQ(negative_dims.Validate().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(EstimateCheckedTest, AcceptsParserOutputAndMatchesUnchecked) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  Estimator est(sketch);
  auto q = query::ParsePath("//paper/title", doc.tags());
  ASSERT_TRUE(q.ok());
  auto checked = est.EstimateChecked(q.value());
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  EXPECT_EQ(checked.value().estimate, est.Estimate(q.value()));
}

TEST(EstimateCheckedTest, RejectsMalformedTwigs) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  Estimator est(sketch);

  // Empty query.
  query::TwigQuery empty;
  EXPECT_EQ(est.EstimateChecked(empty).status().code(),
            util::StatusCode::kInvalidArgument);

  // Dangling branch: a child link whose target no longer points back.
  auto q = query::ParseForClause("for t0 in //paper, t1 in t0/title",
                                 doc.tags());
  ASSERT_TRUE(q.ok());
  query::TwigQuery dangling = q.value();
  dangling.mutable_node(1).parent = query::TwigQuery::kNoParent;
  EXPECT_EQ(est.EstimateChecked(dangling).status().code(),
            util::StatusCode::kInvalidArgument);

  // Existential root: no binding node anywhere.
  query::TwigQuery eroot;
  eroot.AddNode(query::TwigQuery::kNoParent, query::Axis::kDescendant,
                doc.LookupTag("paper"), /*existential=*/true);
  EXPECT_EQ(est.EstimateChecked(eroot).status().code(),
            util::StatusCode::kInvalidArgument);

}

TEST(EstimatorTest, EmptyValueRangeIsValidAndEstimatesZero) {
  // Pinned semantics: a value predicate with lo > hi is a *valid* query
  // that matches nothing — Validate accepts it, the exact evaluator
  // returns 0, and every estimation path returns exactly 0 (see
  // query/twig.h; the differential harness generates such queries on
  // purpose).
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  Estimator est(sketch);
  auto q = query::ParsePath("//book/price", doc.tags());
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  query::TwigQuery empty_range = q.value();
  empty_range.mutable_node(1).pred = query::ValuePredicate{10, 5};
  ASSERT_TRUE(empty_range.Validate().ok());
  EXPECT_EQ(query::ExactEvaluator(doc).Selectivity(empty_range), 0u);
  EXPECT_EQ(est.Estimate(empty_range), 0.0);
  auto checked = est.EstimateChecked(empty_range);
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  EXPECT_EQ(checked.value().estimate, 0.0);

  // Same on an existential branch: the branch can never be witnessed, so
  // the whole twig selects nothing.
  query::TwigQuery empty_branch = q.value();
  const int leaf = empty_branch.AddNode(0, query::Axis::kChild,
                                        doc.LookupTag("author"),
                                        /*existential=*/true);
  empty_branch.mutable_node(leaf).pred = query::ValuePredicate{1, 0};
  ASSERT_TRUE(empty_branch.Validate().ok());
  EXPECT_EQ(query::ExactEvaluator(doc).Selectivity(empty_branch), 0u);
  EXPECT_EQ(est.Estimate(empty_branch), 0.0);
}

}  // namespace
}  // namespace xsketch::core
