#include <gtest/gtest.h>

#include <algorithm>

#include "core/synopsis.h"
#include "core/twig_xsketch.h"
#include "data/figures.h"
#include "data/xmark.h"
#include "xml/parser.h"

namespace xsketch::core {
namespace {

xml::Document Parse(const char* text) {
  auto r = xml::ParseDocument(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

SynNodeId NodeByTag(const Synopsis& syn, const xml::Document& doc,
                    const char* tag) {
  const auto& nodes = syn.NodesWithTag(doc.LookupTag(tag));
  EXPECT_EQ(nodes.size(), 1u) << tag;
  return nodes[0];
}

// --- Label-split synopsis ----------------------------------------------------------

TEST(SynopsisTest, LabelSplitPartitionsByTag) {
  xml::Document doc = data::MakeBibliography();
  Synopsis syn = Synopsis::LabelSplit(doc);
  // One synopsis node per distinct tag.
  EXPECT_EQ(syn.node_count(), doc.tag_count());
  SynNodeId a = NodeByTag(syn, doc, "author");
  EXPECT_EQ(syn.node(a).count, 3u);
  EXPECT_EQ(syn.Extent(a).size(), 3u);
  for (xml::NodeId e : syn.Extent(a)) {
    EXPECT_EQ(doc.tag_name(e), "author");
    EXPECT_EQ(syn.NodeOf(e), a);
  }
}

TEST(SynopsisTest, EdgeCountsBibliography) {
  xml::Document doc = data::MakeBibliography();
  Synopsis syn = Synopsis::LabelSplit(doc);
  SynNodeId a = NodeByTag(syn, doc, "author");
  SynNodeId p = NodeByTag(syn, doc, "paper");
  SynNodeId b = NodeByTag(syn, doc, "book");

  const SynEdge* ap = syn.FindEdge(a, p);
  ASSERT_NE(ap, nullptr);
  EXPECT_EQ(ap->child_count, 4u);   // 4 papers, all under authors
  EXPECT_EQ(ap->parent_count, 3u);  // every author has a paper
  EXPECT_TRUE(ap->backward_stable);
  EXPECT_TRUE(ap->forward_stable);

  const SynEdge* ab = syn.FindEdge(a, b);
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->child_count, 1u);
  EXPECT_TRUE(ab->backward_stable);   // the only book is under an author
  EXPECT_FALSE(ab->forward_stable);   // not every author has a book

  EXPECT_EQ(syn.FindEdge(b, p), nullptr);  // no paper under book
}

TEST(SynopsisTest, RootNode) {
  xml::Document doc = data::MakeBibliography();
  Synopsis syn = Synopsis::LabelSplit(doc);
  EXPECT_EQ(syn.node(syn.RootNode()).tag, doc.LookupTag("bib"));
}

TEST(SynopsisTest, Figure4FullyStable) {
  // Figure 4(c): all edges backward AND forward stable.
  xml::Document doc = data::MakeFigure4A();
  Synopsis syn = Synopsis::LabelSplit(doc);
  for (SynNodeId n = 0; n < syn.node_count(); ++n) {
    for (const SynEdge& e : syn.node(n).children) {
      EXPECT_TRUE(e.backward_stable);
      EXPECT_TRUE(e.forward_stable);
    }
    EXPECT_EQ(syn.UnstableDegree(n), 0);
  }
}

TEST(SynopsisTest, UnstableDegreeCountsBothSides) {
  xml::Document doc = Parse("<r><a><x/></a><a/><b><x/></b></r>");
  Synopsis syn = Synopsis::LabelSplit(doc);
  SynNodeId a = NodeByTag(syn, doc, "a");
  // a→x is F-unstable (one a lacks x) and B-unstable (one x is under b).
  EXPECT_GE(syn.UnstableDegree(a), 1);
  SynNodeId x = NodeByTag(syn, doc, "x");
  EXPECT_GE(syn.UnstableDegree(x), 1);
}

// --- SplitNode -----------------------------------------------------------------------

TEST(SynopsisTest, SplitNodeMovesSubset) {
  xml::Document doc = Parse("<r><a><x/></a><a/><b><x/></b></r>");
  Synopsis syn = Synopsis::LabelSplit(doc);
  SynNodeId x = NodeByTag(syn, doc, "x");
  SynNodeId a = NodeByTag(syn, doc, "a");

  // b-stabilize x w.r.t. a: move x-elements whose parent is an a.
  std::vector<xml::NodeId> subset;
  for (xml::NodeId e : syn.Extent(x)) {
    if (syn.NodeOf(doc.parent(e)) == a) subset.push_back(e);
  }
  ASSERT_EQ(subset.size(), 1u);
  SynNodeId fresh = syn.SplitNode(x, subset);

  EXPECT_EQ(syn.node(fresh).count, 1u);
  EXPECT_EQ(syn.node(x).count, 1u);
  EXPECT_EQ(syn.node(fresh).tag, doc.LookupTag("x"));
  const SynEdge* edge = syn.FindEdge(a, fresh);
  ASSERT_NE(edge, nullptr);
  EXPECT_TRUE(edge->backward_stable);
  EXPECT_EQ(syn.FindEdge(a, x), nullptr);
  // Tag index now returns both nodes.
  EXPECT_EQ(syn.NodesWithTag(doc.LookupTag("x")).size(), 2u);
}

TEST(SynopsisTest, SplitPreservesTotalCounts) {
  xml::Document doc = data::GenerateXMark({.seed = 2, .scale = 0.02});
  Synopsis syn = Synopsis::LabelSplit(doc);
  // Split some node with >= 2 elements.
  for (SynNodeId n = 0; n < syn.node_count(); ++n) {
    if (syn.node(n).count >= 4) {
      std::vector<xml::NodeId> subset(syn.Extent(n).begin(),
                                      syn.Extent(n).begin() + 2);
      uint64_t before = syn.node(n).count;
      SynNodeId fresh = syn.SplitNode(n, subset);
      EXPECT_EQ(syn.node(n).count + syn.node(fresh).count, before);
      break;
    }
  }
  // Partition invariant: every element maps into a consistent extent.
  for (xml::NodeId e = 0; e < doc.size(); ++e) {
    const auto& extent = syn.Extent(syn.NodeOf(e));
    EXPECT_TRUE(std::find(extent.begin(), extent.end(), e) != extent.end());
  }
}

// --- TSN -----------------------------------------------------------------------------

TEST(SynopsisTest, TwigStableNeighborhoodBibliography) {
  xml::Document doc = data::MakeBibliography();
  Synopsis syn = Synopsis::LabelSplit(doc);
  SynNodeId p = NodeByTag(syn, doc, "paper");
  SynNodeId a = NodeByTag(syn, doc, "author");
  SynNodeId bib = NodeByTag(syn, doc, "bib");
  SynNodeId n = NodeByTag(syn, doc, "name");
  SynNodeId y = NodeByTag(syn, doc, "year");
  SynNodeId b = NodeByTag(syn, doc, "book");

  auto tsn = syn.TwigStableNeighborhood(p);
  auto has = [&](SynNodeId id) {
    return std::find(tsn.begin(), tsn.end(), id) != tsn.end();
  };
  EXPECT_TRUE(has(p));    // itself
  EXPECT_TRUE(has(a));    // B-stable author→paper
  EXPECT_TRUE(has(bib));  // B-stable bib→author
  EXPECT_TRUE(has(n));    // F-stable author→name
  EXPECT_TRUE(has(y));    // F-stable paper→year
  EXPECT_FALSE(has(b));   // author→book is not F-stable
}

TEST(SynopsisTest, NearestAncestorIn) {
  xml::Document doc = data::MakeBibliography();
  Synopsis syn = Synopsis::LabelSplit(doc);
  SynNodeId a = NodeByTag(syn, doc, "author");
  xml::TagId keyword = doc.LookupTag("keyword");
  for (xml::NodeId k : doc.NodesWithTag(keyword)) {
    xml::NodeId anc = syn.NearestAncestorIn(k, a);
    ASSERT_NE(anc, xml::kInvalidNode);
    EXPECT_EQ(doc.tag_name(anc), "author");
  }
  SynNodeId book = NodeByTag(syn, doc, "book");
  EXPECT_EQ(syn.NearestAncestorIn(doc.NodesWithTag(keyword)[0], book),
            xml::kInvalidNode);
}

TEST(SynopsisTest, StructureSizeAccounting) {
  xml::Document doc = data::MakeBibliography();
  Synopsis syn = Synopsis::LabelSplit(doc);
  size_t edges = 0;
  for (SynNodeId n = 0; n < syn.node_count(); ++n) {
    edges += syn.node(n).children.size();
  }
  EXPECT_EQ(syn.StructureSizeBytes(), syn.node_count() * 8 + edges * 16);
}

// --- TwigXSketch summaries -----------------------------------------------------------

TEST(TwigXSketchTest, CoarsestBuildsFStableHistograms) {
  xml::Document doc = data::MakeBibliography();
  CoarsestOptions opts;
  opts.max_initial_dims = 2;
  TwigXSketch sketch = TwigXSketch::Coarsest(doc, opts);
  const Synopsis& syn = sketch.synopsis();
  SynNodeId a = NodeByTag(syn, doc, "author");
  const NodeSummary& s = sketch.summary(a);
  // author has F-stable edges to name and paper: both fit max_initial_dims.
  ASSERT_EQ(s.scope.size(), 2u);
  for (const CountRef& ref : s.scope) {
    EXPECT_TRUE(ref.forward);
    EXPECT_EQ(ref.from, a);
    const SynEdge* e = syn.FindEdge(a, ref.to);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->forward_stable);
  }
  EXPECT_FALSE(s.hist.empty());
  EXPECT_FALSE(sketch.HasBackwardDims());
}

TEST(TwigXSketchTest, HistogramMatchesDocumentDistribution) {
  xml::Document doc = data::MakeFigure4A();
  CoarsestOptions opts;
  opts.max_initial_dims = 2;
  TwigXSketch sketch = TwigXSketch::Coarsest(doc, opts);
  const Synopsis& syn = sketch.synopsis();
  SynNodeId a = NodeByTag(syn, doc, "a");
  const NodeSummary& s = sketch.summary(a);
  ASSERT_EQ(s.scope.size(), 2u);
  // f_A over (b, c) = {(10,100): 0.5, (100,10): 0.5} in some dim order.
  EXPECT_NEAR(s.hist.ExpectedProduct({0, 1}), 1000.0, 1e-9);
  EXPECT_NEAR(s.hist.MarginalMean(0), 55.0, 1e-9);
}

TEST(TwigXSketchTest, ExpandScopeForward) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const Synopsis& syn = sketch.synopsis();
  SynNodeId a = NodeByTag(syn, doc, "author");
  SynNodeId b = NodeByTag(syn, doc, "book");
  const size_t dims_before = sketch.summary(a).scope.size();
  EXPECT_TRUE(sketch.ExpandScope(a, CountRef{true, a, b}));
  EXPECT_EQ(sketch.summary(a).scope.size(), dims_before + 1);
  // Duplicate expansion refused.
  EXPECT_FALSE(sketch.ExpandScope(a, CountRef{true, a, b}));
  // Nonexistent edge refused.
  SynNodeId y = NodeByTag(syn, doc, "year");
  EXPECT_FALSE(sketch.ExpandScope(a, CountRef{true, a, y}));
}

TEST(TwigXSketchTest, ExpandScopeBackward) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const Synopsis& syn = sketch.synopsis();
  SynNodeId a = NodeByTag(syn, doc, "author");
  SynNodeId p = NodeByTag(syn, doc, "paper");
  SynNodeId n = NodeByTag(syn, doc, "name");
  // Backward count at paper over the author→name edge (author reaches
  // paper B-stably).
  EXPECT_TRUE(sketch.ExpandScope(p, CountRef{false, a, n}));
  EXPECT_TRUE(sketch.HasBackwardDims());
  // Illegal: book does not reach paper.
  SynNodeId b = NodeByTag(syn, doc, "book");
  EXPECT_FALSE(sketch.ExpandScope(p, CountRef{false, b, n}));
}

TEST(TwigXSketchTest, ValueHistogramsOnValueNodes) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const Synopsis& syn = sketch.synopsis();
  SynNodeId y = NodeByTag(syn, doc, "year");
  EXPECT_FALSE(sketch.summary(y).values.empty());
  // Years: 1999, 2002, 2001, 1998 -> fraction > 2000 is 0.5.
  EXPECT_NEAR(sketch.summary(y).values.EstimateFraction(2001, 9999), 0.5,
              0.01);
  SynNodeId a = NodeByTag(syn, doc, "author");
  EXPECT_TRUE(sketch.summary(a).values.empty());
}

TEST(TwigXSketchTest, SplitRepairsScopes) {
  xml::Document doc = Parse(
      "<r><a><x/><k/></a><a><x/></a><b><x/><x/></b></r>");
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const Synopsis& syn = sketch.synopsis();
  SynNodeId a = NodeByTag(syn, doc, "a");
  SynNodeId x = NodeByTag(syn, doc, "x");
  // Give a an explicit forward dim on x (a→x is F-stable so it may already
  // be there; ensure presence).
  sketch.ExpandScope(a, CountRef{true, a, x});
  ASSERT_GE(sketch.summary(a).FindForwardDim(a, x), 0);

  // Split x by parent tag: elements under a vs under b.
  std::vector<xml::NodeId> subset;
  for (xml::NodeId e : sketch.synopsis().Extent(x)) {
    if (sketch.synopsis().NodeOf(doc.parent(e)) == a) subset.push_back(e);
  }
  SynNodeId fresh = sketch.SplitNode(x, subset);

  // a's scope must now reference the half that is a's child.
  const NodeSummary& s = sketch.summary(a);
  EXPECT_GE(s.FindForwardDim(a, fresh), 0);
  EXPECT_LT(s.FindForwardDim(a, x), 0);  // a no longer parents old-x
  EXPECT_EQ(static_cast<int>(s.scope.size()), s.hist.dims());
}

TEST(TwigXSketchTest, SizeBytesGrowsWithRefinement) {
  xml::Document doc = data::GenerateXMark({.seed = 3, .scale = 0.02});
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const size_t before = sketch.SizeBytes();
  // Find a node with a non-trivial histogram and refine it.
  for (SynNodeId n = 0; n < sketch.synopsis().node_count(); ++n) {
    const NodeSummary& s = sketch.summary(n);
    if (!s.scope.empty() && s.hist.bucket_count() >= s.bucket_budget) {
      sketch.RefineEdgeHistogram(n);
      break;
    }
  }
  EXPECT_GE(sketch.SizeBytes(), before);
}

}  // namespace
}  // namespace xsketch::core
