// Tests for the compiled query path: FrozenSynopsis snapshot invariants,
// TwigCompiler lowering (including the max_path_length resolution the
// compiler performs once per sketch), bit-identity of CompiledTwig
// execution against the reference estimator, the service's LRU plan
// cache, and concurrent Prepare/Execute (a ThreadSanitizer target driven
// by tests/run_sanitizers.sh).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <span>
#include <memory>
#include <thread>
#include <vector>

#include "core/compile.h"
#include "core/estimator.h"
#include "core/frozen.h"
#include "core/twig_xsketch.h"
#include "data/figures.h"
#include "data/xmark.h"
#include "obs/explain.h"
#include "query/workload.h"
#include "query/xpath_parser.h"
#include "service/estimation_service.h"
#include "xsketch_api.h"

namespace xsketch::core {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::vector<query::TwigQuery> XMarkWorkload(const xml::Document& doc,
                                            int num_queries) {
  query::WorkloadOptions wopts;
  wopts.seed = 11;
  wopts.num_queries = num_queries;
  wopts.value_pred_fraction = 0.3;
  const query::Workload wl = query::GeneratePositiveWorkload(doc, wopts);
  std::vector<query::TwigQuery> queries;
  for (const auto& wq : wl.queries) queries.push_back(wq.twig);
  return queries;
}

// --- FrozenSynopsis ------------------------------------------------------

TEST(FrozenSynopsisTest, MirrorsSketchStructure) {
  xml::Document doc = data::GenerateXMark({.seed = 42, .scale = 0.05});
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const Synopsis& syn = sketch.synopsis();
  FrozenSynopsis frozen(sketch);

  ASSERT_EQ(frozen.node_count(), syn.node_count());
  EXPECT_EQ(frozen.doc_max_depth(), doc.max_depth());
  EXPECT_EQ(frozen.root_node(), syn.RootNode());

  for (SynNodeId n = 0; n < frozen.node_count(); ++n) {
    const SynNode& node = syn.node(n);
    EXPECT_EQ(frozen.tag(n), node.tag);
    EXPECT_EQ(frozen.count(n), static_cast<double>(node.count));
    // CSR adjacency preserves the synopsis's edge order.
    ASSERT_EQ(frozen.edges_end(n) - frozen.edges_begin(n),
              static_cast<ptrdiff_t>(node.children.size()));
    const FrozenSynopsis::Edge* e = frozen.edges_begin(n);
    for (const SynEdge& se : node.children) {
      EXPECT_EQ(e->child, se.child);
      EXPECT_EQ(e->child_tag, syn.node(se.child).tag);
      // Pre-divided Forward Uniformity: the same division the estimator
      // performs per query.
      EXPECT_TRUE(BitEqual(
          e->avg, static_cast<double>(se.child_count) / node.count));
      ++e;
    }
    EXPECT_EQ(frozen.FindEdge(n, kInvalidSynNode), nullptr);
  }

  // Tag index preserves NodesWithTag order.
  for (xml::TagId t = 0; t < doc.tag_count(); ++t) {
    const std::span<const core::SynNodeId> got = frozen.NodesWithTag(t);
    const std::vector<core::SynNodeId>& want = syn.NodesWithTag(t);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
  }
  EXPECT_GT(frozen.SizeBytes(), 0u);
}

TEST(FrozenSynopsisTest, StaticProbsMatchUnconditionedHistogram) {
  // On a refined sketch the frozen Condition({}) slice must be bitwise
  // what the live histogram produces for an empty context.
  xml::Document doc = data::GenerateXMark({.seed = 42, .scale = 0.05});
  core::BuildOptions bopts;
  bopts.budget_bytes = 16 * 1024;
  TwigXSketch sketch = core::XBuild(doc, bopts).Build();
  FrozenSynopsis frozen(sketch);

  size_t checked = 0;
  for (SynNodeId n = 0; n < frozen.node_count(); ++n) {
    if (frozen.hist_empty(n)) continue;
    const auto pts = sketch.summary(n).hist.Condition({});
    ASSERT_EQ(pts.size(), frozen.bucket_count(n));
    for (size_t b = 0; b < pts.size(); ++b) {
      EXPECT_TRUE(BitEqual(pts[b].prob, frozen.static_probs(n)[b]));
    }
    checked += pts.size();
  }
  EXPECT_GT(checked, 0u);
}

// --- CompiledTwig bit-identity -------------------------------------------

TEST(CompiledTwigTest, BitIdenticalToEstimator) {
  xml::Document doc = data::GenerateXMark({.seed = 42, .scale = 0.05});
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const Estimator estimator(sketch);
  const auto frozen = std::make_shared<const FrozenSynopsis>(sketch);
  const TwigCompiler compiler(frozen);

  const auto queries = XMarkWorkload(doc, 60);
  ASSERT_FALSE(queries.empty());
  for (const auto& q : queries) {
    auto plan = compiler.Compile(q);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const double expected = estimator.Estimate(q);
    EXPECT_TRUE(BitEqual(plan.value()->Execute(), expected));

    const EstimateStats want = estimator.EstimateWithStats(q);
    const EstimateStats got = plan.value()->ExecuteWithStats();
    EXPECT_TRUE(BitEqual(got.estimate, want.estimate));
    EXPECT_EQ(got.covered_terms, want.covered_terms);
    EXPECT_EQ(got.uniformity_terms, want.uniformity_terms);
    EXPECT_EQ(got.conditioned_nodes, want.conditioned_nodes);
    EXPECT_EQ(got.value_fractions, want.value_fractions);
    EXPECT_EQ(got.existential_terms, want.existential_terms);
    EXPECT_EQ(got.descendant_chains, want.descendant_chains);
  }
}

TEST(CompiledTwigTest, UnknownTagCompilesToZero) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const auto frozen = std::make_shared<const FrozenSynopsis>(sketch);
  const TwigCompiler compiler(frozen);

  query::TwigQuery twig;
  twig.AddNode(-1, query::Axis::kDescendant, query::kUnknownTag);
  auto plan = compiler.Compile(twig);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value()->root_count(), 0u);
  EXPECT_TRUE(BitEqual(plan.value()->Execute(), 0.0));
}

TEST(CompiledTwigTest, RejectsMalformedTwig) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const auto frozen = std::make_shared<const FrozenSynopsis>(sketch);
  const TwigCompiler compiler(frozen);

  query::TwigQuery twig;  // empty: Validate() fails
  auto plan = compiler.Compile(twig);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), util::StatusCode::kInvalidArgument);
}

// --- max_path_length resolution (compile-time, once) ---------------------

TEST(CompiledTwigTest, DefaultPathLengthCapResolvesToDocDepth) {
  // max_path_length = 0 means "document max depth + 1". The compiler
  // resolves that once at construction; an explicit cap of the same value
  // must produce bitwise-identical programs and estimates.
  xml::Document doc = data::GenerateXMark({.seed = 42, .scale = 0.05});
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const auto frozen = std::make_shared<const FrozenSynopsis>(sketch);

  EstimatorOptions defaulted;  // max_path_length = 0
  EstimatorOptions explicit_cap;
  explicit_cap.max_path_length = static_cast<int>(doc.max_depth()) + 1;

  const TwigCompiler c_default(frozen, defaulted);
  const TwigCompiler c_explicit(frozen, explicit_cap);
  EXPECT_EQ(c_default.path_length_cap(), explicit_cap.max_path_length);
  EXPECT_EQ(c_explicit.path_length_cap(), explicit_cap.max_path_length);

  for (const char* p : {"//item//keyword", "//person//name", "//bidder"}) {
    auto q = query::ParsePath(p, doc.tags());
    ASSERT_TRUE(q.ok());
    auto pd = c_default.Compile(q.value());
    auto pe = c_explicit.Compile(q.value());
    ASSERT_TRUE(pd.ok() && pe.ok());
    EXPECT_EQ(pd.value()->path_length_cap(), pe.value()->path_length_cap());
    EXPECT_EQ(pd.value()->step_count(), pe.value()->step_count());
    EXPECT_TRUE(BitEqual(pd.value()->Execute(), pe.value()->Execute()));
  }
}

TEST(CompiledTwigTest, TruncatedPathLengthCapMatchesEstimator) {
  // A non-default cap prunes '//' expansions identically in both
  // implementations — bit-identity must hold under every option value,
  // not just the default.
  xml::Document doc = data::GenerateXMark({.seed = 42, .scale = 0.05});
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const auto frozen = std::make_shared<const FrozenSynopsis>(sketch);

  EstimatorOptions opts;
  opts.max_path_length = 3;
  const Estimator estimator(sketch, opts);
  const TwigCompiler compiler(frozen, opts);
  EXPECT_EQ(compiler.path_length_cap(), 3);

  for (const char* p : {"//item//keyword", "//person//name",
                        "//open_auction//increase"}) {
    auto q = query::ParsePath(p, doc.tags());
    ASSERT_TRUE(q.ok());
    auto plan = compiler.Compile(q.value());
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(BitEqual(plan.value()->Execute(), estimator.Estimate(q.value())));
  }
}

// --- Plan cache ----------------------------------------------------------

TEST(PlanCacheTest, RepeatedPrepareHitsAndReturnsSharedProgram) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  auto svc = service::EstimationService::Create(std::move(sketch), {});
  ASSERT_TRUE(svc.ok());

  auto q = query::ParsePath("//author/paper", doc.tags());
  ASSERT_TRUE(q.ok());
  auto p1 = svc.value()->Prepare(q.value());
  auto p2 = svc.value()->Prepare(q.value());
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1.value().get(), p2.value().get());  // cached, not recompiled

  const auto c = svc.value()->plan_cache_counters();
  EXPECT_EQ(c.lookups, 2u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(c.size, 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  service::ServiceOptions opts;
  opts.plan_cache_capacity = 2;
  auto svc = service::EstimationService::Create(std::move(sketch), opts);
  ASSERT_TRUE(svc.ok());

  const char* paths[] = {"//author", "//paper", "//book"};
  std::vector<query::TwigQuery> queries;
  for (const char* p : paths) {
    auto q = query::ParsePath(p, doc.tags());
    ASSERT_TRUE(q.ok());
    queries.push_back(std::move(q).value());
  }

  // Fill to capacity, then overflow: the least recently used entry
  // (queries[0]) is evicted.
  for (const auto& q : queries) ASSERT_TRUE(svc.value()->Prepare(q).ok());
  auto c = svc.value()->plan_cache_counters();
  EXPECT_EQ(c.lookups, 3u);
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.size, 2u);

  // queries[2] is resident (hit); queries[0] was evicted (miss, which in
  // turn evicts queries[1]).
  ASSERT_TRUE(svc.value()->Prepare(queries[2]).ok());
  EXPECT_EQ(svc.value()->plan_cache_counters().hits, 1u);
  ASSERT_TRUE(svc.value()->Prepare(queries[0]).ok());
  c = svc.value()->plan_cache_counters();
  EXPECT_EQ(c.lookups, 5u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.evictions, 2u);
  EXPECT_EQ(c.size, 2u);
  ASSERT_TRUE(svc.value()->Prepare(queries[1]).ok());
  EXPECT_EQ(svc.value()->plan_cache_counters().hits, 1u);
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  service::ServiceOptions opts;
  opts.plan_cache_capacity = 0;
  auto svc = service::EstimationService::Create(std::move(sketch), opts);
  ASSERT_TRUE(svc.ok());

  auto q = query::ParsePath("//author/paper", doc.tags());
  ASSERT_TRUE(q.ok());
  auto p1 = svc.value()->Prepare(q.value());
  auto p2 = svc.value()->Prepare(q.value());
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_NE(p1.value().get(), p2.value().get());  // fresh compile each time
  const auto c = svc.value()->plan_cache_counters();
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.size, 0u);
  // Uncached programs still execute correctly.
  EXPECT_TRUE(BitEqual(p1.value()->Execute(), p2.value()->Execute()));
}

// --- Concurrency (ThreadSanitizer target) --------------------------------

TEST(CompileConcurrencyTest, ConcurrentPrepareExecuteBitIdentical) {
  // 8 threads hammer Prepare + Execute on a shared service with a plan
  // cache small enough to force concurrent compile/evict/hit traffic.
  // Every result must be bitwise what the sequential reference computes.
  xml::Document doc = data::GenerateXMark({.seed = 42, .scale = 0.05});
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const Estimator reference(sketch);

  const auto queries = XMarkWorkload(doc, 48);
  std::vector<double> expected;
  for (const auto& q : queries) expected.push_back(reference.Estimate(q));

  service::ServiceOptions opts;
  opts.plan_cache_capacity = 8;  // far fewer slots than distinct shapes
  auto svc = service::EstimationService::Create(std::move(sketch), opts);
  ASSERT_TRUE(svc.ok());

  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ExecScratch scratch;
      for (int r = 0; r < kRounds; ++r) {
        for (size_t i = t % 3; i < queries.size(); i += 1 + t % 3) {
          auto plan = svc.value()->Prepare(queries[i]);
          if (!plan.ok() ||
              !BitEqual(plan.value()->Execute(scratch), expected[i])) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);

  const auto c = svc.value()->plan_cache_counters();
  EXPECT_LE(c.hits, c.lookups);
  EXPECT_LE(c.size, 8u);
  EXPECT_GT(c.evictions, 0u);
}

// --- Tier-1 facade -------------------------------------------------------

TEST(ApiSessionTest, PrepareExecuteExplainAgree) {
  xml::Document doc = data::MakeBibliography();
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  const Estimator reference(sketch);

  auto session = api::Session::Open(TwigXSketch::Coarsest(doc));
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  for (const char* p :
       {"//author/paper", "//author[book]/paper/keyword", "//paper"}) {
    auto prepared = session.value().Prepare(p);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    auto twig = query::ParsePath(p, doc.tags());
    ASSERT_TRUE(twig.ok());
    const double expected = reference.Estimate(twig.value());
    EXPECT_TRUE(BitEqual(prepared.value().Execute(), expected));
    EXPECT_TRUE(
        BitEqual(prepared.value().ExecuteWithStats().estimate, expected));

    // Explain runs the reference interpreter with a full trace; its
    // estimate is bitwise the compiled path's output.
    obs::ExplainTrace trace;
    auto explained = session.value().Explain(twig.value(), &trace);
    ASSERT_TRUE(explained.ok());
    EXPECT_TRUE(BitEqual(explained.value().estimate, expected));
    EXPECT_TRUE(BitEqual(trace.estimate(), expected));
  }

  // Parse errors surface through Prepare(string_view).
  EXPECT_FALSE(session.value().Prepare("//[broken").ok());
}

TEST(ApiSessionTest, ExecuteBatchMatchesPrepared) {
  xml::Document doc = data::GenerateXMark({.seed = 42, .scale = 0.05});
  auto session = api::Session::Open(TwigXSketch::Coarsest(doc));
  ASSERT_TRUE(session.ok());

  const auto queries = XMarkWorkload(doc, 24);
  service::BatchStats stats;
  auto results = session.value().ExecuteBatch(queries, &stats);
  ASSERT_EQ(results.size(), queries.size());
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_EQ(stats.plan_cache_lookups, queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    auto prepared = session.value().Prepare(queries[i]);
    ASSERT_TRUE(prepared.ok());
    EXPECT_TRUE(
        BitEqual(results[i].value().estimate, prepared.value().Execute()));
  }
}

}  // namespace
}  // namespace xsketch::core
