// Structural-tracing tests: Tracer ring/drop semantics, span nesting and
// cross-thread context propagation, sampling, the Chrome/binary exporters,
// the flight recorder, histogram exemplars, and EstimationService
// integration (tracing must never perturb estimates). The concurrency
// cases run under TSan/ASan via tests/run_sanitizers.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/estimator.h"
#include "core/twig_xsketch.h"
#include "data/figures.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/xpath_parser.h"
#include "service/estimation_service.h"

namespace xsketch {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Resets the process tracer to a clean sampled-off default before and
// after each test: the tracer is a process singleton shared across the
// whole binary, so every test starts from empty rings.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Tracer::Default().Configure({}); }
  void TearDown() override { obs::Tracer::Default().Configure({}); }
};

// Flight tests additionally need the recorder's rings AND counters clean:
// Configure restores the default capacity/threshold, Reset zeroes the
// counters (other tests run services with the recorder default-on).
class FlightTest : public TraceTest {
 protected:
  void SetUp() override {
    TraceTest::SetUp();
    obs::FlightRecorder::Default().Configure({});
    obs::FlightRecorder::Default().Reset();
  }
  void TearDown() override {
    obs::FlightRecorder::Default().Configure({});
    obs::FlightRecorder::Default().Reset();
    TraceTest::TearDown();
  }
};

TEST_F(TraceTest, UnsampledScopeIsInert) {
  obs::Tracer& tracer = obs::Tracer::Default();
  {
    obs::SpanScope s(obs::Stage::kCompile, 7);
    EXPECT_FALSE(s.recording());
    EXPECT_FALSE(obs::CurrentTraceContext().sampled());
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST_F(TraceTest, ForceTraceRecordsNestedSpans) {
  obs::Tracer& tracer = obs::Tracer::Default();
  const obs::TraceContext ctx = tracer.ForceTrace();
  ASSERT_TRUE(ctx.sampled());
  {
    obs::SpanScope root(ctx, obs::Stage::kQuery, 1);
    ASSERT_TRUE(root.recording());
    EXPECT_EQ(obs::CurrentTraceContext().trace_id, ctx.trace_id);
    {
      obs::SpanScope parse(obs::Stage::kParse, 11);
      obs::SpanScope compile(obs::Stage::kCompile);
      compile.set_arg(3);
    }
    obs::SpanScope exec(obs::Stage::kExecute);
  }
  EXPECT_FALSE(obs::CurrentTraceContext().sampled());

  const std::vector<obs::Span> spans = tracer.SpansForTrace(ctx.trace_id);
  ASSERT_EQ(spans.size(), 4u);  // root, parse, compile, execute

  std::map<uint64_t, obs::Span> by_id;
  const obs::Span* root_span = nullptr;
  for (const obs::Span& s : spans) {
    EXPECT_EQ(s.trace_id, ctx.trace_id);
    by_id[s.span_id] = s;
    if (s.stage == obs::Stage::kQuery) root_span = &by_id[s.span_id];
  }
  ASSERT_NE(root_span, nullptr);
  EXPECT_EQ(root_span->parent_id, 0u);
  EXPECT_EQ(root_span->arg, 1u);

  for (const obs::Span& s : spans) {
    if (s.span_id == root_span->span_id) continue;
    // Every non-root span nests (by parent link AND by interval) inside
    // its parent.
    ASSERT_TRUE(by_id.count(s.parent_id)) << StageName(s.stage);
    const obs::Span& parent = by_id[s.parent_id];
    EXPECT_GE(s.start_ns, parent.start_ns);
    EXPECT_LE(s.start_ns + s.dur_ns, parent.start_ns + parent.dur_ns);
    if (s.stage == obs::Stage::kParse) {
      EXPECT_EQ(parent.stage, obs::Stage::kQuery);
      EXPECT_EQ(s.arg, 11u);
    }
    if (s.stage == obs::Stage::kCompile) {
      // Nested thread-current scope attaches under the enclosing parse
      // scope (set_arg updated the payload mid-scope).
      EXPECT_EQ(parent.stage, obs::Stage::kParse);
      EXPECT_EQ(s.arg, 3u);
    }
    if (s.stage == obs::Stage::kExecute) {
      EXPECT_EQ(parent.stage, obs::Stage::kQuery);
    }
  }
}

TEST_F(TraceTest, StartTraceHonorsSampleEvery) {
  obs::Tracer& tracer = obs::Tracer::Default();
  // sample_every = 0 (the default): StartTrace never samples.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(tracer.StartTrace().sampled());

  tracer.Configure({.sample_every = 3});
  int sampled = 0;
  for (int i = 0; i < 9; ++i) sampled += tracer.StartTrace().sampled();
  EXPECT_EQ(sampled, 3);  // exactly every 3rd, any phase

  tracer.Configure({.sample_every = 1});
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(tracer.StartTrace().sampled());

  // Distinct sampled traces get distinct ids.
  const uint64_t a = tracer.StartTrace().trace_id;
  const uint64_t b = tracer.StartTrace().trace_id;
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
}

TEST_F(TraceTest, RingOverwriteCountsDrops) {
  obs::Tracer& tracer = obs::Tracer::Default();
  tracer.Configure({.sample_every = 0, .ring_capacity = 4});
  const obs::TraceContext ctx = tracer.ForceTrace();
  {
    obs::SpanScope root(ctx, obs::Stage::kQuery);
    for (int i = 0; i < 10; ++i) {
      obs::SpanScope s(obs::Stage::kExecute, static_cast<uint64_t>(i));
    }
  }
  // 11 appends (10 children + the root) into a 4-slot ring.
  EXPECT_EQ(tracer.recorded(), 11u);
  EXPECT_EQ(tracer.Snapshot().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 7u);

  // The survivors are the newest spans (the overwrite discipline).
  uint64_t max_arg = 0;
  for (const obs::Span& s : tracer.Snapshot()) {
    if (s.stage == obs::Stage::kExecute) max_arg = std::max(max_arg, s.arg);
  }
  EXPECT_EQ(max_arg, 9u);
}

TEST_F(TraceTest, CrossThreadPropagation) {
  obs::Tracer& tracer = obs::Tracer::Default();
  const obs::TraceContext ctx = tracer.ForceTrace();
  uint64_t root_id = 0;
  constexpr int kThreads = 4;
  {
    obs::SpanScope root(ctx, obs::Stage::kBatch, kThreads);
    root_id = root.context().parent_span;
    const obs::TraceContext chunk_ctx = root.context();
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&chunk_ctx, w] {
        // Explicit handoff: the worker attaches to the batch root, and
        // its thread-current children attach beneath the chunk.
        obs::SpanScope chunk(chunk_ctx, obs::Stage::kBatchChunk,
                             static_cast<uint64_t>(w));
        obs::SpanScope q(obs::Stage::kQuery);
        EXPECT_TRUE(q.recording());
      });
    }
    for (auto& t : workers) t.join();
  }

  const std::vector<obs::Span> spans = tracer.SpansForTrace(ctx.trace_id);
  ASSERT_EQ(spans.size(), 1 + 2 * kThreads);

  std::map<uint64_t, obs::Span> by_id;
  for (const obs::Span& s : spans) by_id[s.span_id] = s;
  std::set<uint32_t> chunk_tids;
  int chunks = 0, queries = 0;
  for (const obs::Span& s : spans) {
    if (s.stage == obs::Stage::kBatchChunk) {
      ++chunks;
      EXPECT_EQ(s.parent_id, root_id);
      chunk_tids.insert(s.tid);
    } else if (s.stage == obs::Stage::kQuery) {
      ++queries;
      ASSERT_TRUE(by_id.count(s.parent_id));
      EXPECT_EQ(by_id[s.parent_id].stage, obs::Stage::kBatchChunk);
      EXPECT_EQ(by_id[s.parent_id].tid, s.tid);  // same worker thread
    }
  }
  EXPECT_EQ(chunks, kThreads);
  EXPECT_EQ(queries, kThreads);
  // Each worker recorded into its own thread ring.
  EXPECT_EQ(chunk_tids.size(), static_cast<size_t>(kThreads));
}

TEST_F(TraceTest, UnsampledExplicitContextSuppressesNestedScopes) {
  obs::Tracer& tracer = obs::Tracer::Default();
  const obs::TraceContext ctx = tracer.ForceTrace();
  obs::SpanScope root(ctx, obs::Stage::kQuery);
  {
    // An explicitly-unsampled scope masks the sampled thread context for
    // its duration (what a rate-0 service does under a traced caller that
    // declined to adopt).
    obs::SpanScope off(obs::TraceContext{}, obs::Stage::kBatch);
    EXPECT_FALSE(off.recording());
    EXPECT_FALSE(obs::CurrentTraceContext().sampled());
    obs::SpanScope nested(obs::Stage::kCompile);
    EXPECT_FALSE(nested.recording());
  }
  // The previous context is restored once the masking scope closes.
  EXPECT_EQ(obs::CurrentTraceContext().trace_id, ctx.trace_id);
  obs::SpanScope after(obs::Stage::kExecute);
  EXPECT_TRUE(after.recording());
}

TEST_F(TraceTest, DrainClearsSpansKeepsDropCounter) {
  obs::Tracer& tracer = obs::Tracer::Default();
  tracer.Configure({.sample_every = 0, .ring_capacity = 2});
  const obs::TraceContext ctx = tracer.ForceTrace();
  {
    obs::SpanScope root(ctx, obs::Stage::kQuery);
    obs::SpanScope a(obs::Stage::kParse);
    obs::SpanScope b(obs::Stage::kCompile);
  }
  const uint64_t dropped = tracer.dropped();
  EXPECT_EQ(dropped, 1u);  // 3 spans, 2 slots
  EXPECT_EQ(tracer.Drain().size(), 2u);
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.dropped(), dropped);
}

TEST_F(TraceTest, StageNamesAreDistinct) {
  std::set<std::string> names;
  for (int i = 0; i < obs::kStageCount; ++i) {
    const char* name = obs::StageName(static_cast<obs::Stage>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(names.insert(name).second) << name;
  }
}

TEST_F(TraceTest, ChromeJsonExport) {
  obs::Tracer& tracer = obs::Tracer::Default();
  const obs::TraceContext ctx = tracer.ForceTrace();
  {
    obs::SpanScope root(ctx, obs::Stage::kQuery);
    obs::SpanScope c(obs::Stage::kCompile, 5);
  }
  const std::string json =
      obs::Tracer::ToChromeJson(tracer.SpansForTrace(ctx.trace_id));
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compile\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"xsketch\""), std::string::npos);
  // Braces balance (cheap well-formedness check without a JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(TraceTest, BinaryRoundTrip) {
  obs::Tracer& tracer = obs::Tracer::Default();
  const obs::TraceContext ctx = tracer.ForceTrace();
  {
    obs::SpanScope root(ctx, obs::Stage::kBatch, 3);
    obs::SpanScope a(obs::Stage::kBatchChunk, 1);
    obs::SpanScope b(obs::Stage::kExecute);
  }
  const std::vector<obs::Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);

  const std::string bytes = obs::Tracer::ToBinary(spans);
  auto restored = obs::Tracer::FromBinary(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value().size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(restored.value()[i].trace_id, spans[i].trace_id);
    EXPECT_EQ(restored.value()[i].span_id, spans[i].span_id);
    EXPECT_EQ(restored.value()[i].parent_id, spans[i].parent_id);
    EXPECT_EQ(restored.value()[i].start_ns, spans[i].start_ns);
    EXPECT_EQ(restored.value()[i].dur_ns, spans[i].dur_ns);
    EXPECT_EQ(restored.value()[i].arg, spans[i].arg);
    EXPECT_EQ(restored.value()[i].tid, spans[i].tid);
    EXPECT_EQ(restored.value()[i].stage, spans[i].stage);
  }

  // Corruption is rejected, not misparsed.
  std::string bad_magic = bytes;
  bad_magic[0] = 'Y';
  EXPECT_FALSE(obs::Tracer::FromBinary(bad_magic).ok());
  EXPECT_FALSE(
      obs::Tracer::FromBinary(bytes.substr(0, bytes.size() - 1)).ok());
  EXPECT_FALSE(obs::Tracer::FromBinary("XT").ok());
}

// --- EstimationService integration -------------------------------------------

std::vector<query::TwigQuery> BibQueries(const xml::Document& doc) {
  std::vector<query::TwigQuery> queries;
  for (const char* p : {"//paper", "//paper/keyword", "//author/paper/title",
                        "//book", "//paper/keyword"}) {
    auto q = query::ParsePath(p, doc.tags());
    EXPECT_TRUE(q.ok()) << p;
    queries.push_back(std::move(q).value());
  }
  return queries;
}

TEST_F(TraceTest, ServiceTracingNeverPerturbsEstimates) {
  xml::Document doc = data::MakeBibliography();
  core::TwigXSketch sketch = core::TwigXSketch::Coarsest(doc);
  const core::Estimator reference(sketch);
  const std::vector<query::TwigQuery> queries = BibQueries(doc);

  service::ServiceOptions plain_opts;
  plain_opts.num_threads = 2;
  auto plain = service::EstimationService::Create(sketch, plain_opts);
  ASSERT_TRUE(plain.ok());

  service::ServiceOptions traced_opts = plain_opts;
  traced_opts.trace_sample_rate = 1.0;
  auto traced = service::EstimationService::Create(sketch, traced_opts);
  ASSERT_TRUE(traced.ok());

  const auto a = plain.value()->EstimateBatch(queries);
  const auto b = traced.value()->EstimateBatch(queries);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok());
    ASSERT_TRUE(b[i].ok());
    EXPECT_TRUE(BitEqual(a[i].value().estimate, b[i].value().estimate));
    EXPECT_TRUE(BitEqual(a[i].value().estimate,
                         reference.Estimate(queries[i])));
  }

  // The traced batch produced the full serving-path span taxonomy.
  std::set<obs::Stage> stages;
  for (const obs::Span& s : obs::Tracer::Default().Snapshot()) {
    stages.insert(s.stage);
  }
  EXPECT_TRUE(stages.count(obs::Stage::kBatch));
  EXPECT_TRUE(stages.count(obs::Stage::kBatchChunk));
  EXPECT_TRUE(stages.count(obs::Stage::kQuery));
  EXPECT_TRUE(stages.count(obs::Stage::kPlanCache));
  EXPECT_TRUE(stages.count(obs::Stage::kExecute));
}

TEST_F(TraceTest, ServiceRateZeroRecordsNothing) {
  xml::Document doc = data::MakeBibliography();
  core::TwigXSketch sketch = core::TwigXSketch::Coarsest(doc);
  service::ServiceOptions opts;  // trace_sample_rate defaults to 0
  opts.num_threads = 2;
  auto svc = service::EstimationService::Create(std::move(sketch), opts);
  ASSERT_TRUE(svc.ok());
  const auto results = svc.value()->EstimateBatch(BibQueries(doc));
  for (const auto& r : results) EXPECT_TRUE(r.ok());
  EXPECT_EQ(obs::Tracer::Default().recorded(), 0u);
}

TEST_F(TraceTest, ServiceDeterministicSampling) {
  // The per-service sampling decision is a pure function of (seed,
  // ordinal): two services with the same seed sample the same ordinals.
  xml::Document doc = data::MakeBibliography();
  core::TwigXSketch sketch = core::TwigXSketch::Coarsest(doc);
  const std::vector<query::TwigQuery> queries = BibQueries(doc);

  service::ServiceOptions opts;
  opts.num_threads = 1;
  opts.trace_sample_rate = 0.5;
  opts.trace_seed = 42;

  uint64_t counts[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    obs::Tracer::Default().Reset();
    auto svc = service::EstimationService::Create(sketch, opts);
    ASSERT_TRUE(svc.ok());
    for (const auto& q : queries) ASSERT_TRUE(svc.value()->Estimate(q).ok());
    counts[run] = obs::Tracer::Default().recorded();
  }
  EXPECT_EQ(counts[0], counts[1]);
}

TEST_F(TraceTest, InvalidSampleRateRejected) {
  xml::Document doc = data::MakeBibliography();
  core::TwigXSketch sketch = core::TwigXSketch::Coarsest(doc);
  service::ServiceOptions opts;
  opts.trace_sample_rate = 1.5;
  EXPECT_FALSE(
      service::EstimationService::Create(std::move(sketch), opts).ok());
}

// --- Flight recorder ---------------------------------------------------------

TEST_F(FlightTest, RecordsDumpNewestFirst) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Default();
  for (int i = 0; i < 3; ++i) {
    obs::FlightRecord r;
    r.twig_key = "key" + std::to_string(i);
    r.estimate = static_cast<double>(i);
    r.total_us = 10.0;
    rec.Record(std::move(r));
  }
  const std::vector<obs::FlightRecord> dump = rec.Dump();
  ASSERT_EQ(dump.size(), 3u);
  EXPECT_EQ(dump[0].twig_key, "key2");  // newest first
  EXPECT_EQ(dump[2].twig_key, "key0");
  EXPECT_GT(dump[0].seq, dump[1].seq);
  EXPECT_GT(dump[1].seq, dump[2].seq);
  EXPECT_EQ(rec.counters().recorded, 3u);
  EXPECT_EQ(rec.counters().slow, 0u);
  EXPECT_EQ(rec.counters().errors, 0u);

  obs::FlightRecord found;
  EXPECT_TRUE(rec.FindByKey("key1", &found));
  EXPECT_EQ(found.estimate, 1.0);
  EXPECT_FALSE(rec.FindByKey("nope", &found));
  rec.Reset();
  EXPECT_TRUE(rec.Dump().empty());
  EXPECT_EQ(rec.counters().recorded, 0u);
}

TEST_F(FlightTest, CapacityOverwriteCountsDropped) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Default();
  rec.Configure({.capacity = 2, .slow_us = 1e9});
  for (int i = 0; i < 5; ++i) {
    obs::FlightRecord r;
    r.twig_key = "k" + std::to_string(i);
    rec.Record(std::move(r));
  }
  const auto dump = rec.Dump();
  ASSERT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump[0].twig_key, "k4");
  EXPECT_EQ(dump[1].twig_key, "k3");
  EXPECT_EQ(rec.counters().recorded, 5u);
  EXPECT_EQ(rec.counters().dropped, 3u);
}

TEST_F(FlightTest, SlowAndErrorRecordsPromoteSpanTrees) {
  obs::Tracer& tracer = obs::Tracer::Default();
  obs::FlightRecorder& rec = obs::FlightRecorder::Default();
  rec.Configure({.capacity = 16, .slow_us = 1000.0});

  const obs::TraceContext ctx = tracer.ForceTrace();
  {
    obs::SpanScope root(ctx, obs::Stage::kQuery);
    obs::SpanScope e(obs::Stage::kExecute);
  }

  // Fast + ok: no promotion even though the trace was sampled.
  obs::FlightRecord fast;
  fast.twig_key = "fast";
  fast.trace_id = ctx.trace_id;
  fast.total_us = 10.0;
  rec.Record(std::move(fast));

  // Slow: crosses the threshold, carries the full span tree.
  obs::FlightRecord slow;
  slow.twig_key = "slow";
  slow.trace_id = ctx.trace_id;
  slow.total_us = 5000.0;
  rec.Record(std::move(slow));

  // Failed: promoted regardless of latency.
  obs::FlightRecord failed;
  failed.twig_key = "failed";
  failed.trace_id = ctx.trace_id;
  failed.ok = false;
  failed.error = "boom";
  failed.total_us = 1.0;
  rec.Record(std::move(failed));

  obs::FlightRecord out;
  ASSERT_TRUE(rec.FindByKey("fast", &out));
  EXPECT_FALSE(out.slow);
  EXPECT_TRUE(out.spans.empty());
  ASSERT_TRUE(rec.FindByKey("slow", &out));
  EXPECT_TRUE(out.slow);
  EXPECT_EQ(out.spans.size(), 2u);
  ASSERT_TRUE(rec.FindByKey("failed", &out));
  EXPECT_TRUE(out.spans.size() == 2u);
  EXPECT_EQ(rec.counters().slow, 1u);
  EXPECT_EQ(rec.counters().errors, 1u);

  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"records\":["), std::string::npos);
  EXPECT_NE(json.find("\"error\":\"boom\""), std::string::npos);
  EXPECT_NE(json.find("\"stages_us\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  rec.Reset();
}

TEST_F(FlightTest, ServiceRecordsEveryBatchQuery) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Default();
  xml::Document doc = data::MakeBibliography();
  core::TwigXSketch sketch = core::TwigXSketch::Coarsest(doc);
  const std::vector<query::TwigQuery> queries = BibQueries(doc);

  service::ServiceOptions opts;  // flight_recorder defaults to on
  opts.num_threads = 2;
  opts.sketch_generation = 7;
  auto svc = service::EstimationService::Create(sketch, opts);
  ASSERT_TRUE(svc.ok());
  const auto results = svc.value()->EstimateBatch(queries);

  EXPECT_EQ(rec.counters().recorded, queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    obs::FlightRecord r;
    ASSERT_TRUE(
        rec.FindByKey(service::CanonicalTwigKey(queries[i]), &r)) << i;
    EXPECT_TRUE(BitEqual(r.estimate, results[i].value().estimate));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.sketch_generation, 7u);
    EXPECT_GT(r.total_us, 0.0);
    EXPECT_GE(r.total_us, r.execute_us);
  }
  // A second batch over the same shapes goes entirely through the plan
  // cache; FindByKey returns the newest record for each key.
  for (const auto& r : svc.value()->EstimateBatch(queries)) {
    ASSERT_TRUE(r.ok());
  }
  obs::FlightRecord dup;
  ASSERT_TRUE(
      rec.FindByKey(service::CanonicalTwigKey(queries.front()), &dup));
  EXPECT_TRUE(dup.plan_cache_hit);
  EXPECT_EQ(dup.compile_us, 0.0);  // cache hits never re-lower

  // Recorder off: nothing is recorded.
  rec.Reset();
  service::ServiceOptions off = opts;
  off.flight_recorder = false;
  auto svc_off = service::EstimationService::Create(sketch, off);
  ASSERT_TRUE(svc_off.ok());
  for (const auto& r : svc_off.value()->EstimateBatch(queries)) {
    EXPECT_TRUE(r.ok());
  }
  EXPECT_EQ(rec.counters().recorded, 0u);
}

TEST_F(FlightTest, ConcurrentRecordersAndDumpers) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Default();
  rec.Configure({.capacity = 64, .slow_us = 1e9});
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&rec, w] {
      for (int i = 0; i < kIters; ++i) {
        obs::FlightRecord r;
        r.twig_key = "w" + std::to_string(w);
        r.estimate = static_cast<double>(i);
        rec.Record(std::move(r));
      }
    });
  }
  std::thread dumper([&rec] {
    for (int i = 0; i < 50; ++i) {
      const auto dump = rec.Dump();
      // Seqs are unique and strictly descending in a dump.
      for (size_t j = 1; j < dump.size(); ++j) {
        EXPECT_LT(dump[j].seq, dump[j - 1].seq);
      }
      (void)rec.ToJson();
    }
  });
  for (auto& t : writers) t.join();
  dumper.join();
  EXPECT_EQ(rec.counters().recorded,
            static_cast<uint64_t>(kThreads) * kIters);
  rec.Configure({});
}

// --- Histogram exemplars -----------------------------------------------------

TEST_F(TraceTest, HistogramExemplarTracksWorstTracedObservation) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.GetHistogram("lat_us", {10.0, 100.0});
  h.Observe(500.0);       // untraced: never becomes the exemplar
  h.Observe(5.0, 111);
  h.Observe(50.0, 222);
  h.Observe(20.0, 333);   // traced but not the worst
  obs::Histogram::Exemplar ex = h.exemplar();
  EXPECT_EQ(ex.trace_id, 222u);
  EXPECT_EQ(ex.value, 50.0);

  // The JSON exposition carries the exemplar; the Prometheus text layout
  // is unchanged (exemplars are JSON-only by design).
  const std::string json = reg.ToJson();
  // 50 renders as "5e+01": the exposition uses the shortest
  // round-trippable decimal form.
  EXPECT_NE(json.find("\"exemplar\":{\"value\":5e+01,\"trace_id\":222}"),
            std::string::npos);
  EXPECT_EQ(reg.ToPrometheusText().find("exemplar"), std::string::npos);

  // TakeExemplar starts a fresh window.
  ex = h.TakeExemplar();
  EXPECT_EQ(ex.trace_id, 222u);
  EXPECT_EQ(h.exemplar().trace_id, 0u);
  h.Observe(1.0, 444);
  EXPECT_EQ(h.exemplar().trace_id, 444u);
}

TEST_F(TraceTest, BatchLatencyExemplarLinksToTrace) {
  // A fully-traced batch leaves the service latency histogram holding an
  // exemplar pointing into the recorded trace.
  xml::Document doc = data::MakeBibliography();
  core::TwigXSketch sketch = core::TwigXSketch::Coarsest(doc);
  service::ServiceOptions opts;
  opts.num_threads = 2;
  opts.trace_sample_rate = 1.0;
  auto svc = service::EstimationService::Create(std::move(sketch), opts);
  ASSERT_TRUE(svc.ok());

  obs::Histogram& lat = obs::MetricsRegistry::Default().GetHistogram(
      "xsketch_service_query_latency_us", obs::LatencyBucketsUs());
  lat.TakeExemplar();  // fresh window
  for (const auto& r : svc.value()->EstimateBatch(BibQueries(doc))) {
    ASSERT_TRUE(r.ok());
  }
  const obs::Histogram::Exemplar ex = lat.TakeExemplar();
  ASSERT_NE(ex.trace_id, 0u);
  EXPECT_FALSE(obs::Tracer::Default().SpansForTrace(ex.trace_id).empty());
}

}  // namespace
}  // namespace xsketch
