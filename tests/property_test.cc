// Property-based and metamorphic tests: invariants that must hold across
// random documents, workloads and synopsis configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/builder.h"
#include "core/estimator.h"
#include "cst/cst.h"
#include "data/imdb.h"
#include "data/swissprot.h"
#include "data/xmark.h"
#include "query/evaluator.h"
#include "query/workload.h"
#include "query/xpath_parser.h"
#include "testing/seed.h"
#include "util/random.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xsketch {
namespace {

// All randomness below derives from one base seed (XSKETCH_SEED overrides
// the default), so any failure reproduces from the single number printed
// by the SCOPED_TRACE / the BaseSeed() banner on stderr.
uint64_t Seed(uint64_t salt) {
  return testing::Derive(testing::BaseSeed(), salt);
}

#define XS_SEED_TRACE() \
  SCOPED_TRACE(testing::ReproCommand(testing::BaseSeed(), "property_test"))

enum class DataKind { kXMark, kImdb, kSProt };

xml::Document MakeDoc(DataKind kind, uint64_t seed, double scale) {
  switch (kind) {
    case DataKind::kXMark:
      return data::GenerateXMark({.seed = seed, .scale = scale});
    case DataKind::kImdb:
      return data::GenerateImdb({.seed = seed, .scale = scale});
    case DataKind::kSProt:
      return data::GenerateSwissProt({.seed = seed, .scale = scale});
  }
  __builtin_unreachable();
}

// --- Round-trip across all generators -------------------------------------------------

class RoundTripProperty : public ::testing::TestWithParam<DataKind> {};

TEST_P(RoundTripProperty, WriteParseIdentity) {
  XS_SEED_TRACE();
  xml::Document doc = MakeDoc(GetParam(), Seed(1), 0.02);
  auto reparsed = xml::ParseDocument(xml::WriteDocument(doc));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  const xml::Document& b = reparsed.value();
  ASSERT_EQ(doc.size(), b.size());

  // Node ids reflect *creation* order, which generators do not promise to
  // be document order; compare the trees by parallel traversal instead
  // (the writer and parser both preserve sibling order).
  std::vector<std::pair<xml::NodeId, xml::NodeId>> stack{
      {doc.root(), b.root()}};
  size_t visited = 0;
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    ++visited;
    ASSERT_EQ(doc.tag_name(x), b.tag_name(y));
    ASSERT_EQ(doc.numeric_value(x), b.numeric_value(y));
    std::vector<xml::NodeId> cx = doc.Children(x);
    std::vector<xml::NodeId> cy = b.Children(y);
    ASSERT_EQ(cx.size(), cy.size());
    for (size_t i = 0; i < cx.size(); ++i) stack.push_back({cx[i], cy[i]});
  }
  EXPECT_EQ(visited, doc.size());
}

TEST_P(RoundTripProperty, MutatedInputNeverCrashesParser) {
  XS_SEED_TRACE();
  xml::Document doc = MakeDoc(GetParam(), Seed(2), 0.005);
  std::string text = xml::WriteDocument(doc);
  util::Rng rng(Seed(3));
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = text;
    const int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:
          mutated.erase(pos, rng.Uniform(8) + 1);
          break;
        default:
          mutated.insert(pos, "<");
          break;
      }
    }
    // Must terminate and either fail cleanly or produce a sealed document.
    auto result = xml::ParseDocument(mutated);
    if (result.ok()) {
      EXPECT_TRUE(result.value().sealed());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, RoundTripProperty,
                         ::testing::Values(DataKind::kXMark, DataKind::kImdb,
                                           DataKind::kSProt));

// --- Estimator metamorphic invariants --------------------------------------------------

class EstimatorInvariants : public ::testing::TestWithParam<DataKind> {
 protected:
  void SetUp() override {
    doc_ = MakeDoc(GetParam(), Seed(4), 0.03);
    sketch_ = std::make_unique<core::TwigXSketch>(
        core::TwigXSketch::Coarsest(doc_));
    estimator_ = std::make_unique<core::Estimator>(*sketch_);
  }

  xml::Document doc_;
  std::unique_ptr<core::TwigXSketch> sketch_;
  std::unique_ptr<core::Estimator> estimator_;
};

TEST_P(EstimatorInvariants, WideningValuePredicateNeverDecreasesEstimate) {
  query::WorkloadOptions wopts;
  XS_SEED_TRACE();
  wopts.seed = Seed(5);
  wopts.num_queries = 25;
  wopts.value_pred_fraction = 1.0;
  query::Workload w = query::GeneratePositiveWorkload(doc_, wopts);
  for (const auto& q : w.queries) {
    const double base = estimator_->Estimate(q.twig);
    query::TwigQuery widened = q.twig;
    for (int i = 0; i < widened.size(); ++i) {
      auto& pred = widened.mutable_node(i).pred;
      if (pred.has_value()) {
        const int64_t span = pred->hi - pred->lo;
        pred->lo -= span;
        pred->hi += span;
      }
    }
    EXPECT_GE(estimator_->Estimate(widened), base - 1e-9);
  }
}

TEST_P(EstimatorInvariants, RemovingValuePredicatesNeverDecreasesEstimate) {
  query::WorkloadOptions wopts;
  XS_SEED_TRACE();
  wopts.seed = Seed(6);
  wopts.num_queries = 25;
  wopts.value_pred_fraction = 1.0;
  query::Workload w = query::GeneratePositiveWorkload(doc_, wopts);
  for (const auto& q : w.queries) {
    const double base = estimator_->Estimate(q.twig);
    query::TwigQuery stripped = q.twig;
    for (int i = 0; i < stripped.size(); ++i) {
      stripped.mutable_node(i).pred.reset();
    }
    EXPECT_GE(estimator_->Estimate(stripped), base - 1e-9);
  }
}

TEST_P(EstimatorInvariants, AddingExistentialBranchNeverIncreasesEstimate) {
  query::WorkloadOptions wopts;
  XS_SEED_TRACE();
  wopts.seed = Seed(7);
  wopts.num_queries = 25;
  query::Workload w = query::GeneratePositiveWorkload(doc_, wopts);
  util::Rng rng(Seed(8));
  for (const auto& q : w.queries) {
    const double base = estimator_->Estimate(q.twig);
    query::TwigQuery extended = q.twig;
    const int t = static_cast<int>(rng.Uniform(extended.size()));
    extended.AddNode(t, query::Axis::kChild,
                     static_cast<xml::TagId>(rng.Uniform(doc_.tag_count())),
                     /*existential=*/true);
    // An extra semi-join can only filter bindings (factor in [0, 1]).
    EXPECT_LE(estimator_->Estimate(extended), base + 1e-6 + base * 1e-9);
  }
}

TEST_P(EstimatorInvariants, ExactEvaluatorSameMonotonicity) {
  // The same semi-join monotonicity holds for the ground truth.
  query::ExactEvaluator eval(doc_);
  query::WorkloadOptions wopts;
  XS_SEED_TRACE();
  wopts.seed = Seed(9);
  wopts.num_queries = 15;
  query::Workload w = query::GeneratePositiveWorkload(doc_, wopts);
  util::Rng rng(Seed(10));
  for (const auto& q : w.queries) {
    query::TwigQuery extended = q.twig;
    const int t = static_cast<int>(rng.Uniform(extended.size()));
    extended.AddNode(t, query::Axis::kChild,
                     static_cast<xml::TagId>(rng.Uniform(doc_.tag_count())),
                     /*existential=*/true);
    EXPECT_LE(eval.Selectivity(extended), q.true_count);
  }
}

TEST_P(EstimatorInvariants, RefinementNeverBreaksSinglePathExactness) {
  // Per-edge counts make child-axis chains exact on the label-split
  // synopsis; structural refinements must preserve that.
  core::BuildOptions opts;
  XS_SEED_TRACE();
  opts.seed = Seed(11);
  opts.candidates_per_iteration = 4;
  opts.sample_queries = 8;
  opts.budget_bytes =
      core::TwigXSketch::Coarsest(doc_, opts.coarsest).SizeBytes() + 2048;
  core::TwigXSketch refined = core::XBuild(doc_, opts).Build();
  core::Estimator est(refined);
  query::ExactEvaluator eval(doc_);

  // Single-edge chains //parent/child for a sample of synopsis edges.
  int checked = 0;
  for (size_t tag = 0; tag < doc_.tag_count() && checked < 12; ++tag) {
    const auto& elems = doc_.NodesWithTag(static_cast<xml::TagId>(tag));
    if (elems.empty()) continue;
    const xml::NodeId parent = doc_.parent(elems[0]);
    if (parent == xml::kInvalidNode) continue;
    const std::string expr = "//" + doc_.tag_name(parent) + "/" +
                             doc_.tags().Get(static_cast<uint32_t>(tag));
    auto twig = query::ParsePath(expr, doc_.tags());
    ASSERT_TRUE(twig.ok());
    const double truth =
        static_cast<double>(eval.Selectivity(twig.value()));
    EXPECT_NEAR(est.Estimate(twig.value()), truth,
                std::max(1.0, truth * 1e-6))
        << expr;
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

INSTANTIATE_TEST_SUITE_P(Generators, EstimatorInvariants,
                         ::testing::Values(DataKind::kXMark, DataKind::kImdb,
                                           DataKind::kSProt));

// --- CST invariants ---------------------------------------------------------------------

class CstInvariants : public ::testing::TestWithParam<DataKind> {};

TEST_P(CstInvariants, UnprunedPathEstimatesAreExact) {
  XS_SEED_TRACE();
  xml::Document doc = MakeDoc(GetParam(), Seed(12), 0.02);
  cst::CstOptions opts;
  opts.budget_bytes = 1 << 24;  // no pruning
  opts.max_suffix_length = 16;  // deeper than any of the documents
  cst::CorrelatedSuffixTree cst = cst::CorrelatedSuffixTree::Build(doc, opts);
  query::ExactEvaluator eval(doc);

  // Random child-axis root-to-descendant chains.
  util::Rng rng(Seed(13));
  for (int trial = 0; trial < 30; ++trial) {
    xml::NodeId e = static_cast<xml::NodeId>(rng.Uniform(doc.size()));
    std::string expr;
    std::vector<xml::NodeId> chain;
    for (xml::NodeId cur = e; cur != xml::kInvalidNode;
         cur = doc.parent(cur)) {
      chain.push_back(cur);
    }
    std::reverse(chain.begin(), chain.end());
    for (xml::NodeId n : chain) expr += "/" + doc.tag_name(n);
    auto twig = query::ParsePath(expr, doc.tags());
    ASSERT_TRUE(twig.ok()) << expr;
    EXPECT_NEAR(cst.Estimate(twig.value()),
                static_cast<double>(eval.Selectivity(twig.value())), 1e-6)
        << expr;
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, CstInvariants,
                         ::testing::Values(DataKind::kXMark, DataKind::kImdb,
                                           DataKind::kSProt));

// --- Synopsis split invariants ------------------------------------------------------------

class SplitInvariants : public ::testing::TestWithParam<DataKind> {};

TEST_P(SplitInvariants, RandomSplitsPreservePartitionInvariants) {
  XS_SEED_TRACE();
  xml::Document doc = MakeDoc(GetParam(), Seed(14), 0.02);
  core::Synopsis syn = core::Synopsis::LabelSplit(doc);
  util::Rng rng(Seed(15));

  for (int round = 0; round < 12; ++round) {
    // Pick a splittable node and a random proper subset.
    core::SynNodeId target = core::kInvalidSynNode;
    for (int attempt = 0; attempt < 50; ++attempt) {
      const auto n =
          static_cast<core::SynNodeId>(rng.Uniform(syn.node_count()));
      if (syn.node(n).count >= 2) {
        target = n;
        break;
      }
    }
    if (target == core::kInvalidSynNode) break;
    const auto& extent = syn.Extent(target);
    std::vector<xml::NodeId> subset;
    for (xml::NodeId e : extent) {
      if (rng.Bernoulli(0.5)) subset.push_back(e);
    }
    if (subset.empty() || subset.size() == extent.size()) continue;
    syn.SplitNode(target, subset);

    // Invariant 1: partition covers the document exactly once.
    size_t total = 0;
    for (core::SynNodeId n = 0; n < syn.node_count(); ++n) {
      total += syn.Extent(n).size();
      EXPECT_EQ(syn.node(n).count, syn.Extent(n).size());
      for (xml::NodeId e : syn.Extent(n)) {
        EXPECT_EQ(syn.NodeOf(e), n);
        EXPECT_EQ(doc.tag(e), syn.node(n).tag);
      }
    }
    EXPECT_EQ(total, doc.size());

    // Invariant 2: stability flags match their definitions (spot-check a
    // few edges per round against brute force).
    int checked = 0;
    for (core::SynNodeId u = 0;
         u < syn.node_count() && checked < 8; ++u) {
      for (const core::SynEdge& edge : syn.node(u).children) {
        uint64_t child_count = 0;
        for (xml::NodeId e : syn.Extent(edge.child)) {
          const xml::NodeId p = doc.parent(e);
          if (p != xml::kInvalidNode && syn.NodeOf(p) == u) ++child_count;
        }
        EXPECT_EQ(edge.child_count, child_count);
        EXPECT_EQ(edge.backward_stable,
                  child_count == syn.node(edge.child).count);
        uint64_t parents = 0;
        for (xml::NodeId e : syn.Extent(u)) {
          bool has = false;
          doc.ForEachChild(e, [&](xml::NodeId c) {
            if (syn.NodeOf(c) == edge.child) has = true;
          });
          if (has) ++parents;
        }
        EXPECT_EQ(edge.parent_count, parents);
        EXPECT_EQ(edge.forward_stable, parents == syn.node(u).count);
        if (++checked >= 8) break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, SplitInvariants,
                         ::testing::Values(DataKind::kXMark, DataKind::kImdb,
                                           DataKind::kSProt));

}  // namespace
}  // namespace xsketch
