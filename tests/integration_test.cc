// Cross-module integration tests: end-to-end pipelines over the synthetic
// data sets, checking the qualitative shapes the paper reports (§6.2) at a
// reduced scale so the suite stays fast.

#include <gtest/gtest.h>

#include <cmath>

#include "core/builder.h"
#include "core/estimator.h"
#include "cst/cst.h"
#include "data/figures.h"
#include "data/imdb.h"
#include "data/swissprot.h"
#include "data/xmark.h"
#include "query/evaluator.h"
#include "query/workload.h"
#include "query/xpath_parser.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xsketch {
namespace {

using core::TwigXSketch;
using core::XBuild;

TEST(IntegrationTest, ParseBuildEstimatePipeline) {
  // Full pipeline from XML text: parse -> synopsis -> estimate vs truth.
  xml::Document generated = data::GenerateSwissProt({.seed = 1, .scale = 0.02});
  std::string text = xml::WriteDocument(generated);
  auto parsed = xml::ParseDocument(text);
  ASSERT_TRUE(parsed.ok());
  const xml::Document& doc = parsed.value();

  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  core::Estimator est(sketch);
  query::ExactEvaluator eval(doc);
  auto q = query::ParseForClause(
      "for t0 in //entry, t1 in t0/reference, t2 in t1/author", doc.tags());
  ASSERT_TRUE(q.ok());
  const double truth = static_cast<double>(eval.Selectivity(q.value()));
  const double estimate = est.Estimate(q.value());
  ASSERT_GT(truth, 0.0);
  EXPECT_LT(std::abs(estimate - truth) / truth, 0.25);
}

TEST(IntegrationTest, SkewedDataCoarseErrorExceedsRegularData) {
  // Paper §6.2: IMDB's coarsest-summary error is far higher than XMark's,
  // because XMark is uniform and IMDB is correlated.
  xml::Document xmark = data::GenerateXMark({.seed = 20, .scale = 0.05});
  xml::Document imdb = data::GenerateImdb({.seed = 20, .scale = 0.05});

  query::WorkloadOptions wopts;
  wopts.seed = 100;
  wopts.num_queries = 80;
  query::Workload wx = query::GeneratePositiveWorkload(xmark, wopts);
  query::Workload wi = query::GeneratePositiveWorkload(imdb, wopts);

  const double err_xmark =
      XBuild::WorkloadError(TwigXSketch::Coarsest(xmark), wx);
  const double err_imdb =
      XBuild::WorkloadError(TwigXSketch::Coarsest(imdb), wi);
  EXPECT_GT(err_imdb, err_xmark);
}

TEST(IntegrationTest, BudgetSweepReducesImdbError) {
  // Fig 9(a) shape: error decreases (weakly) as the budget grows.
  xml::Document imdb = data::GenerateImdb({.seed = 21, .scale = 0.05});
  query::WorkloadOptions wopts;
  wopts.seed = 101;
  wopts.num_queries = 60;
  query::Workload w = query::GeneratePositiveWorkload(imdb, wopts);

  core::BuildOptions bopts;
  bopts.seed = 17;
  bopts.candidates_per_iteration = 6;
  bopts.sample_queries = 14;
  const size_t coarse = TwigXSketch::Coarsest(imdb, bopts.coarsest).SizeBytes();
  bopts.budget_bytes = coarse + 8 * 1024;

  double coarse_err =
      XBuild::WorkloadError(TwigXSketch::Coarsest(imdb, bopts.coarsest), w);
  TwigXSketch refined = XBuild(imdb, bopts).Build();
  double refined_err = XBuild::WorkloadError(refined, w);
  EXPECT_LT(refined_err, coarse_err * 1.05);
}

TEST(IntegrationTest, XSketchBeatsCstOnCorrelatedData) {
  // Fig 9(c) shape: on the skewed IMDB data, XSKETCH error is lower than
  // CST error at a comparable budget.
  xml::Document imdb = data::GenerateImdb({.seed = 22, .scale = 0.05});
  query::WorkloadOptions wopts;
  wopts.seed = 102;
  wopts.num_queries = 60;
  wopts.existential_prob = 0.0;  // simple-path twigs
  query::Workload w = query::GeneratePositiveWorkload(imdb, wopts);

  core::BuildOptions bopts;
  bopts.seed = 19;
  bopts.candidates_per_iteration = 6;
  bopts.sample_queries = 14;
  const size_t coarse = TwigXSketch::Coarsest(imdb, bopts.coarsest).SizeBytes();
  const size_t budget = coarse + 10 * 1024;
  bopts.budget_bytes = budget;
  TwigXSketch sketch = XBuild(imdb, bopts).Build();

  cst::CstOptions copts;
  copts.budget_bytes = budget;
  cst::CorrelatedSuffixTree cst = cst::CorrelatedSuffixTree::Build(imdb, copts);

  const double s = w.SanityBound();
  std::vector<double> xs, cs;
  core::Estimator est(sketch);
  for (const auto& q : w.queries) {
    xs.push_back(est.Estimate(q.twig));
    cs.push_back(cst.Estimate(q.twig));
  }
  const double err_x = query::AvgRelativeError(w, xs, s);
  const double err_c = query::AvgRelativeError(w, cs, s);
  EXPECT_LT(err_x, err_c);
}

TEST(IntegrationTest, NegativeWorkloadNearZeroEstimates) {
  // §6.1: "our synopses consistently give close to zero estimates" for
  // negative workloads.
  xml::Document doc = data::GenerateXMark({.seed = 23, .scale = 0.05});
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  query::WorkloadOptions wopts;
  wopts.seed = 103;
  wopts.num_queries = 40;
  query::Workload neg = query::GenerateNegativeWorkload(doc, wopts);
  core::Estimator est(sketch);
  int structurally_zero = 0;
  double max_est = 0.0;
  for (const auto& q : neg.queries) {
    const double e = est.Estimate(q.twig);
    if (e == 0.0) ++structurally_zero;
    max_est = std::max(max_est, e);
  }
  EXPECT_GT(structurally_zero, static_cast<int>(neg.queries.size() / 3));
  EXPECT_LT(max_est, 200.0);  // small relative to typical positive counts
}

TEST(IntegrationTest, ValuePredicatesIncreaseErrorOnMatchedQueries) {
  // Fig 9(b) vs 9(a): value predicates make estimation harder. Comparing
  // two independently generated workloads is dominated by composition
  // noise at test scale, so compare matched pairs: the same query bodies
  // with and without their value predicates.
  xml::Document imdb = data::GenerateImdb({.seed = 24, .scale = 0.05});
  TwigXSketch sketch = TwigXSketch::Coarsest(imdb);
  core::Estimator est(sketch);
  query::ExactEvaluator eval(imdb);

  query::WorkloadOptions pv;
  pv.seed = 104;
  pv.num_queries = 120;
  pv.value_pred_fraction = 1.0;
  query::Workload w = query::GeneratePositiveWorkload(imdb, pv);

  query::Workload with_pred, without_pred;
  for (const auto& q : w.queries) {
    if (q.twig.value_predicate_count() == 0) continue;
    with_pred.queries.push_back({q.twig, q.true_count});
    query::TwigQuery stripped = q.twig;
    for (int i = 0; i < stripped.size(); ++i) {
      stripped.mutable_node(i).pred.reset();
    }
    const uint64_t truth = eval.Selectivity(stripped);
    without_pred.queries.push_back({std::move(stripped), truth});
  }
  ASSERT_GT(with_pred.queries.size(), 40u);

  auto avg_err = [&](const query::Workload& wl) {
    std::vector<double> estimates;
    for (const auto& q : wl.queries) estimates.push_back(est.Estimate(q.twig));
    return query::AvgRelativeError(wl, estimates, wl.SanityBound());
  };
  // Predicates compound the structural error with value-estimation error;
  // a small tolerance absorbs cases where a predicate happens to mask a
  // structural miss.
  EXPECT_GT(avg_err(with_pred), avg_err(without_pred) * 0.9);
}

TEST(IntegrationTest, EstimatorHandlesRecursiveSchema) {
  // XMark's parlist/listitem recursion creates cycles in the label-split
  // synopsis; '//' expansion must terminate and produce sane estimates.
  xml::Document doc = data::GenerateXMark({.seed = 25, .scale = 0.05});
  TwigXSketch sketch = TwigXSketch::Coarsest(doc);
  core::Estimator est(sketch);
  query::ExactEvaluator eval(doc);
  auto q = query::ParsePath("//item//text", doc.tags());
  ASSERT_TRUE(q.ok());
  const double truth = static_cast<double>(eval.Selectivity(q.value()));
  const double estimate = est.Estimate(q.value());
  ASSERT_GT(truth, 0.0);
  EXPECT_GT(estimate, 0.0);
  EXPECT_LT(std::abs(estimate - truth) / truth, 0.8);
}

TEST(IntegrationTest, Table2StatisticsComputable) {
  xml::Document doc = data::GenerateImdb({.seed = 26, .scale = 0.05});
  query::WorkloadOptions wopts;
  wopts.seed = 105;
  wopts.num_queries = 50;
  query::Workload w = query::GeneratePositiveWorkload(doc, wopts);
  EXPECT_GT(w.AvgResult(), 0.0);
  EXPECT_GT(w.AvgFanout(), 1.0);
  EXPECT_LT(w.AvgFanout(), 4.0);
  EXPECT_GE(w.SanityBound(), 1.0);
}

}  // namespace
}  // namespace xsketch
